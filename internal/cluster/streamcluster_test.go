package cluster

// Unit tests for the stream side of the cluster: the StreamCoordinator's
// delta-count fan-out must merge to the exact vector a single local scan
// produces, under every failure mode the job coordinator handles —
// because the incremental maintainer's correctness argument (the
// Mannila–Toivonen border check) consumes these counts as ground truth.

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/obsv"
)

// refStreamCounts is the single-node reference: one sequential scan of d.
func refStreamCounts(d *dataset.Dataset, sets []itemset.Itemset) []int64 {
	counts := make([]int64, len(sets))
	setBits := bitsetsOf(d.NumItems(), sets)
	sc := dataset.NewScanner(d)
	sc.Scan(func(_ itemset.Itemset, bits *itemset.Bitset) {
		for i, sb := range setBits {
			if sb.IsSubsetOf(bits) {
				counts[i]++
			}
		}
	})
	return counts
}

// testStreamSets builds a deliberately non-antichain set list (singletons,
// pairs, and a containing triple) — the wire contract promises correct
// counts for any set list, not just the maintainer's antichains.
func testStreamSets(d *dataset.Dataset) []itemset.Itemset {
	n := d.NumItems()
	sets := []itemset.Itemset{}
	for i := 0; i < n && i < 6; i++ {
		sets = append(sets, itemset.Itemset{itemset.Item(i)})
	}
	if n >= 3 {
		sets = append(sets, itemset.Itemset{0, 1}, itemset.Itemset{1, 2}, itemset.Itemset{0, 1, 2})
	}
	return sets
}

func assertSameCounts(t *testing.T, label string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d counts, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: set %d counted %d, want %d", label, i, got[i], want[i])
		}
	}
}

// TestStreamClusterCountMatchesLocal pins the tentpole contract at the
// cluster layer: the fanned-out delta count is byte-identical to one
// local scan for every worker count.
func TestStreamClusterCountMatchesLocal(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			tc := startCluster(t, workers, testPoolConfig())
			sc := NewStreamCoordinator("s1", tc.pool, nil)
			for seed := int64(1); seed <= 3; seed++ {
				d := testDataset(seed)
				sets := testStreamSets(d)
				want := refStreamCounts(d, sets)
				got := sc.CountSets(seed, StreamSideAppend, d, sets)
				assertSameCounts(t, fmt.Sprintf("seed%d", seed), got, want)
				doc := sc.TakeDoc()
				if doc.Degraded {
					t.Fatalf("seed%d: healthy cluster degraded: %+v", seed, doc)
				}
				if doc.RPCs == 0 {
					t.Fatalf("seed%d: no RPCs issued — counting did not distribute", seed)
				}
			}
		})
	}
}

// TestStreamClusterEmptyDelta pins the trivial paths: an empty delta or an
// empty set list returns zeros without touching the cluster.
func TestStreamClusterEmptyDelta(t *testing.T) {
	tc := startCluster(t, 1, testPoolConfig())
	sc := NewStreamCoordinator("s-empty", tc.pool, nil)
	if got := sc.CountSets(1, StreamSideEvict, nil, []itemset.Itemset{{0}}); got[0] != 0 {
		t.Fatalf("nil dataset counted %d, want 0", got[0])
	}
	d := testDataset(1)
	if got := sc.CountSets(1, StreamSideAppend, d, nil); len(got) != 0 {
		t.Fatalf("empty set list returned %d counts", len(got))
	}
	if doc := sc.TakeDoc(); doc.RPCs != 0 {
		t.Fatalf("trivial counts issued %d RPCs", doc.RPCs)
	}
}

// TestStreamClusterNodeLoss kills 1-of-2 and 1-of-4 workers at the batch
// barrier and mid-delta-scan, at every RPC ordinal until the tripwire runs
// off the end: every count must still merge to the reference vector via
// failover, never degradation.
func TestStreamClusterNodeLoss(t *testing.T) {
	d := testDataset(7)
	sets := testStreamSets(d)
	want := refStreamCounts(d, sets)
	for _, workers := range []int{2, 4} {
		workers := workers
		for _, afterTx := range []int{0, 11} {
			afterTx := afterTx
			mode := "barrier"
			if afterTx > 0 {
				mode = "midscan"
			}
			t.Run(fmt.Sprintf("w%d/%s", workers, mode), func(t *testing.T) {
				for trip := 1; ; trip++ {
					tc := startCluster(t, workers, testPoolConfig())
					nk := tc.kills[0]
					nk.TripAtCount = trip
					nk.AfterTx = afterTx
					col := obsv.NewCollector()
					sc := NewStreamCoordinator("s-loss", tc.pool, col)
					got := sc.CountSets(1, StreamSideAppend, d, sets)
					assertSameCounts(t, fmt.Sprintf("trip%d", trip), got, want)
					doc := sc.TakeDoc()
					if doc.Degraded {
						t.Fatalf("trip %d: lost 1 of %d workers but degraded: %+v", trip, workers, doc)
					}
					tripped := nk.Down()
					if tripped && doc.WorkerDeaths == 0 {
						t.Fatalf("trip %d: worker was killed but no death recorded: %+v", trip, doc)
					}
					if tripped && doc.Failovers == 0 {
						t.Fatalf("trip %d: worker died but no failover recorded: %+v", trip, doc)
					}
					if !tripped {
						if trip == 1 {
							t.Fatal("tripwire never fired — matrix tested nothing")
						}
						return
					}
				}
			})
		}
	}
}

// TestStreamClusterDegradationRearms pins the deliberate difference from
// job degradation: a below-quorum batch counts locally and says so, and
// the NEXT batch re-checks quorum instead of staying degraded forever.
func TestStreamClusterDegradationRearms(t *testing.T) {
	d := testDataset(11)
	sets := testStreamSets(d)
	want := refStreamCounts(d, sets)

	reg := obsv.NewRegistry()
	cfg := testPoolConfig()
	cfg.Quorum = 2
	cfg.Registry = reg
	tc := startCluster(t, 2, cfg)
	col := obsv.NewCollector()
	sc := NewStreamCoordinator("s-degrade", tc.pool, col)

	// Batch 1: healthy.
	assertSameCounts(t, "healthy", sc.CountSets(1, StreamSideAppend, d, sets), want)
	if doc := sc.TakeDoc(); doc.Degraded {
		t.Fatalf("healthy batch degraded: %+v", doc)
	}

	// Kill one worker and wait for the heartbeat to notice: live 1 < quorum 2.
	tc.kills[0].Kill()
	deadline := time.Now().Add(15 * time.Second)
	for len(tc.pool.Live()) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("dead worker never left the live set")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Batch 2: below quorum — counted locally, byte-identical, recorded.
	assertSameCounts(t, "degraded", sc.CountSets(2, StreamSideAppend, d, sets), want)
	doc := sc.TakeDoc()
	if !doc.Degraded || doc.DegradedReason == "" {
		t.Fatalf("below-quorum batch not recorded as degraded: %+v", doc)
	}
	if doc.RPCs != 0 {
		t.Fatalf("degraded batch still issued %d RPCs", doc.RPCs)
	}
	if doc.LocalShardCounts == 0 {
		t.Fatalf("degraded batch recorded no local counts: %+v", doc)
	}
	var sawDegraded bool
	for _, ev := range col.ClusterEvents() {
		if ev.Event == "degraded" {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatalf("no 'degraded' trace event; events: %+v", col.ClusterEvents())
	}
	if n := reg.Snapshot()["pincer_cluster_degraded_total"]; n == 0 {
		t.Fatal("pincer_cluster_degraded_total not incremented")
	}

	// Revive; batch 3 must fan out again — degradation did not stick.
	tc.kills[0].Revive()
	for len(tc.pool.Live()) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("revived worker never rejoined")
		}
		time.Sleep(5 * time.Millisecond)
	}
	assertSameCounts(t, "recovered", sc.CountSets(3, StreamSideAppend, d, sets), want)
	doc = sc.TakeDoc()
	if doc.Degraded {
		t.Fatalf("recovered batch still degraded: %+v", doc)
	}
	if doc.RPCs == 0 {
		t.Fatal("recovered batch did not return to the cluster")
	}
}

// TestStreamClusterDuplicateReplyMemo pins wire idempotency: a duplicate
// delivery of a completed delta count is answered from the worker's memo,
// flagged, and byte-identical.
func TestStreamClusterDuplicateReplyMemo(t *testing.T) {
	tc := startCluster(t, 1, testPoolConfig())
	d := testDataset(19)
	sc := NewStreamCoordinator("s-dup", tc.pool, nil)
	shards := sc.shardDelta(d, 1)
	sh := shards[0]
	w := tc.pool.Workers()[0]
	ctx := context.Background()
	if err := tc.pool.loadShard(ctx, w, &LoadShardRequest{
		ShardID: sh.id, NumItems: sh.data.NumItems(), Baskets: string(sh.baskets),
	}); err != nil {
		t.Fatalf("loadShard: %v", err)
	}
	req := &StreamCountRequest{
		StreamID: "s-dup", Seq: 1, Side: StreamSideAppend, ShardID: sh.id,
		NumItems: sh.data.NumItems(), Sets: testStreamSets(d),
	}
	first, err := tc.pool.streamCount(ctx, w, req)
	if err != nil {
		t.Fatalf("streamCount: %v", err)
	}
	if first.Memoized {
		t.Fatal("first delivery flagged as duplicate")
	}
	second, err := tc.pool.streamCount(ctx, w, req)
	if err != nil {
		t.Fatalf("duplicate streamCount: %v", err)
	}
	if !second.Memoized {
		t.Fatal("duplicate delivery not served from the memo")
	}
	assertSameCounts(t, "memo", second.SetCounts, first.SetCounts)

	// A different side under the same stamp is a different logical request:
	// it must be recounted, not memo-answered.
	req2 := *req
	req2.Side = StreamSideEvict
	third, err := tc.pool.streamCount(ctx, w, &req2)
	if err != nil {
		t.Fatalf("other-side streamCount: %v", err)
	}
	if third.Memoized {
		t.Fatal("distinct side answered from the memo")
	}
}

// TestStreamClusterDecodeValidation is the table test over the new wire
// message: every malformed request is rejected with a typed 400, never a
// panic.
func TestStreamClusterDecodeValidation(t *testing.T) {
	shard := strings.Repeat("ab", 32)
	ok := fmt.Sprintf(`{"stream_id":"s1","seq":1,"side":"append","shard_id":"%s","num_items":4,"sets":[[0,2]]}`, shard)
	if _, err := DecodeStreamCount(strings.NewReader(ok), 1<<20); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []struct {
		name, body string
	}{
		{"empty", ``},
		{"not-json", `{`},
		{"unknown-field", fmt.Sprintf(`{"stream_id":"s1","seq":1,"side":"append","shard_id":"%s","num_items":4,"sets":[[0]],"bogus":1}`, shard)},
		{"no-stream", fmt.Sprintf(`{"seq":1,"side":"append","shard_id":"%s","num_items":4,"sets":[[0]]}`, shard)},
		{"zero-seq", fmt.Sprintf(`{"stream_id":"s1","seq":0,"side":"append","shard_id":"%s","num_items":4,"sets":[[0]]}`, shard)},
		{"bad-side", fmt.Sprintf(`{"stream_id":"s1","seq":1,"side":"sideways","shard_id":"%s","num_items":4,"sets":[[0]]}`, shard)},
		{"bad-shard", `{"stream_id":"s1","seq":1,"side":"append","shard_id":"zz","num_items":4,"sets":[[0]]}`},
		{"zero-universe", fmt.Sprintf(`{"stream_id":"s1","seq":1,"side":"append","shard_id":"%s","num_items":0,"sets":[[0]]}`, shard)},
		{"huge-universe", fmt.Sprintf(`{"stream_id":"s1","seq":1,"side":"append","shard_id":"%s","num_items":9999999,"sets":[[0]]}`, shard)},
		{"no-sets", fmt.Sprintf(`{"stream_id":"s1","seq":1,"side":"append","shard_id":"%s","num_items":4,"sets":[]}`, shard)},
		{"empty-set", fmt.Sprintf(`{"stream_id":"s1","seq":1,"side":"append","shard_id":"%s","num_items":4,"sets":[[]]}`, shard)},
		{"unsorted-set", fmt.Sprintf(`{"stream_id":"s1","seq":1,"side":"append","shard_id":"%s","num_items":4,"sets":[[2,0]]}`, shard)},
		{"dup-item", fmt.Sprintf(`{"stream_id":"s1","seq":1,"side":"append","shard_id":"%s","num_items":4,"sets":[[1,1]]}`, shard)},
		{"out-of-universe", fmt.Sprintf(`{"stream_id":"s1","seq":1,"side":"append","shard_id":"%s","num_items":4,"sets":[[7]]}`, shard)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeStreamCount(strings.NewReader(tc.body), 1<<20); err == nil {
				t.Fatalf("malformed request %q accepted", tc.body)
			}
		})
	}
}
