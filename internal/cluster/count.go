package cluster

import (
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
)

// directElemsMax mirrors core's threshold: up to this many MFCS elements
// are counted by direct per-transaction bitset subset tests, above it a
// trie over the elements is cheaper. The counts are identical either way.
const directElemsMax = 16

// countShard performs one pass's counting over one shard — the pure
// procedure shared by the worker's count handler and the coordinator's
// local fallback, so a shard counted locally after node loss contributes
// exactly the bytes its worker would have. It mirrors core's sequential
// PassCounter kind by kind; the scanner's universe must equal
// req.NumItems so count vectors align positionally across shards.
//
// tick, when non-nil, is called once per scanned transaction; a non-nil
// return aborts the scan (the fault-injection mid-scan kill). The
// coordinator's local path instead passes a tick that panics the typed
// mining abort on cancellation, matching in-process counters.
func countShard(sc *dataset.MemoryScanner, req *CountRequest, tick func() error) (*CountResponse, error) {
	resp := &CountResponse{ShardID: req.ShardID, Pass: req.Pass, Transactions: sc.Len()}
	var abort error
	scan := func(fn func(tx itemset.Itemset, bits *itemset.Bitset)) bool {
		sc.Scan(func(tx itemset.Itemset, bits *itemset.Bitset) {
			if abort != nil {
				return
			}
			if tick != nil {
				if err := tick(); err != nil {
					abort = err
					return
				}
			}
			fn(tx, bits)
		})
		return abort == nil
	}

	switch req.Kind {
	case KindItems:
		array := counting.NewItemArray(req.NumItems)
		elemCounts := make([]int64, len(req.Elems))
		elemBits := bitsetsOf(req.NumItems, req.Elems)
		ok := scan(func(tx itemset.Itemset, bits *itemset.Bitset) {
			array.Add(tx)
			for i, eb := range elemBits {
				if eb.IsSubsetOf(bits) {
					elemCounts[i]++
				}
			}
		})
		if !ok {
			return nil, abort
		}
		resp.ItemCounts = array.Counts()
		resp.ElemCounts = elemCounts

	case KindPairs:
		tri := counting.NewTriangle(req.NumItems, req.Live)
		elemCounts := make([]int64, len(req.Elems))
		elemBits := bitsetsOf(req.NumItems, req.Elems)
		ok := scan(func(tx itemset.Itemset, bits *itemset.Bitset) {
			tri.Add(tx)
			for i, eb := range elemBits {
				if eb.IsSubsetOf(bits) {
					elemCounts[i]++
				}
			}
		})
		if !ok {
			return nil, abort
		}
		_, _, resp.PairCounts = tri.Snapshot()
		resp.ElemCounts = elemCounts

	case KindCandidates:
		var counter counting.Counter
		if len(req.Candidates) > 0 {
			counter = counting.NewCounter(parseEngine(req.Engine), req.Candidates)
		}
		var elemCounter counting.Counter
		var elemCounts []int64
		var elemBits []*itemset.Bitset
		if len(req.Elems) > directElemsMax {
			// MFCS elements form an antichain, so the trie handles the
			// mixed lengths safely (same rationale as core).
			elemCounter = counting.NewTrie(req.Elems)
		} else {
			elemCounts = make([]int64, len(req.Elems))
			elemBits = bitsetsOf(req.NumItems, req.Elems)
		}
		ok := scan(func(tx itemset.Itemset, bits *itemset.Bitset) {
			if counter != nil {
				counter.Add(tx)
			}
			if elemCounter != nil {
				elemCounter.Add(tx)
			} else {
				for i, eb := range elemBits {
					if eb.IsSubsetOf(bits) {
						elemCounts[i]++
					}
				}
			}
		})
		if !ok {
			return nil, abort
		}
		if elemCounter != nil {
			elemCounts = elemCounter.Counts()
		}
		if counter != nil {
			resp.CandCounts = counter.Counts()
		}
		resp.ElemCounts = elemCounts
	}
	return resp, nil
}

// bitsetsOf builds the dense forms of sets over the given universe.
func bitsetsOf(universe int, sets []itemset.Itemset) []*itemset.Bitset {
	if len(sets) == 0 {
		return nil
	}
	out := make([]*itemset.Bitset, len(sets))
	for i, s := range sets {
		out[i] = itemset.BitsetOf(universe, s)
	}
	return out
}

// parseEngine maps a validated wire engine name to the counting engine
// ("" = hashtree, the default).
func parseEngine(name string) counting.Engine {
	if name == "" {
		return counting.EngineHashTree
	}
	e, _ := counting.ParseEngine(name)
	return e
}
