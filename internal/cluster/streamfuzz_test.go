package cluster_test

// FuzzStreamClusterMessage throws arbitrary bytes at a worker's stream
// delta-count endpoint: the worker must never panic, answer 200 only for
// well-formed, semantically valid messages over a loaded shard, reject
// everything else as a typed JSON error document — and answer a duplicate
// delivery of any accepted message idempotently from its memo, with the
// same support vector it sent the first time.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"pincer/internal/cluster"
)

func FuzzStreamClusterMessage(f *testing.F) {
	shard := "1 2 3\n2 3\n0 2\n"
	id := cluster.ShardID(8, []byte(shard))

	// Seeds: a valid count on every side, then one per rejection class —
	// unknown shard, universe mismatch, bad sides, malformed sets, and
	// byte-level garbage.
	f.Add([]byte(fmt.Sprintf(`{"stream_id":"s","seq":1,"side":"append","shard_id":%q,"num_items":8,"sets":[[2],[2,3]]}`, id)))
	f.Add([]byte(fmt.Sprintf(`{"stream_id":"s","seq":2,"side":"evict","shard_id":%q,"num_items":8,"sets":[[0]]}`, id)))
	f.Add([]byte(fmt.Sprintf(`{"stream_id":"s","seq":3,"side":"border","shard_id":%q,"num_items":8,"sets":[[1,2,3]]}`, id)))
	f.Add([]byte(fmt.Sprintf(`{"stream_id":"","seq":1,"side":"append","shard_id":%q,"num_items":8,"sets":[[1]]}`, id)))
	f.Add([]byte(fmt.Sprintf(`{"stream_id":"s","seq":0,"side":"append","shard_id":%q,"num_items":8,"sets":[[1]]}`, id)))
	f.Add([]byte(fmt.Sprintf(`{"stream_id":"s","seq":1,"side":"sideways","shard_id":%q,"num_items":8,"sets":[[1]]}`, id)))
	f.Add([]byte(`{"stream_id":"s","seq":1,"side":"append","shard_id":"ZZ","num_items":8,"sets":[[1]]}`))
	f.Add([]byte(fmt.Sprintf(`{"stream_id":"s","seq":1,"side":"append","shard_id":%q,"num_items":4,"sets":[[1]]}`, id)))
	f.Add([]byte(fmt.Sprintf(`{"stream_id":"s","seq":1,"side":"append","shard_id":%q,"num_items":99999999,"sets":[[1]]}`, id)))
	f.Add([]byte(fmt.Sprintf(`{"stream_id":"s","seq":1,"side":"append","shard_id":%q,"num_items":8,"sets":[]}`, id)))
	f.Add([]byte(fmt.Sprintf(`{"stream_id":"s","seq":1,"side":"append","shard_id":%q,"num_items":8,"sets":[[]]}`, id)))
	f.Add([]byte(fmt.Sprintf(`{"stream_id":"s","seq":1,"side":"append","shard_id":%q,"num_items":8,"sets":[[3,2]]}`, id)))
	f.Add([]byte(fmt.Sprintf(`{"stream_id":"s","seq":1,"side":"append","shard_id":%q,"num_items":8,"sets":[[1,1]]}`, id)))
	f.Add([]byte(fmt.Sprintf(`{"stream_id":"s","seq":1,"side":"append","shard_id":%q,"num_items":8,"sets":[[9]]}`, id)))
	f.Add([]byte(fmt.Sprintf(`{"stream_id":"s","seq":1,"side":"append","shard_id":%q,"num_items":8,"sets":[[1]],"bogus":1}`, id)))
	f.Add([]byte(`{not json`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"stream_id":"s"} trailing`))

	w := cluster.NewWorker(cluster.WorkerConfig{ID: "fuzz", MaxBodyBytes: 1 << 20})

	// Pre-load the shard the valid seeds reference so the fuzzer can reach
	// the 200 path (and, through it, the memo idempotency contract).
	load := httptest.NewRequest(http.MethodPost, "http://worker/cluster/v1/shards",
		bytes.NewReader([]byte(fmt.Sprintf(`{"shard_id":%q,"num_items":8,"baskets":%q}`, id, shard))))
	loadRec := httptest.NewRecorder()
	w.ServeHTTP(loadRec, load)
	if loadRec.Code != http.StatusOK {
		f.Fatalf("shard preload failed: %d %s", loadRec.Code, loadRec.Body.String())
	}

	post := func(body []byte) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "http://worker/cluster/v1/stream/count", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		w.ServeHTTP(rec, req) // must not panic, whatever the bytes
		return rec
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		rec := post(body)
		if rec.Code != http.StatusOK {
			var e struct {
				Error  string `json:"error"`
				Reason string `json:"reason"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("%d response is not the error JSON shape (%v): %q", rec.Code, err, rec.Body.String())
			}
			if e.Reason == "" {
				t.Fatalf("%d response lacks typed reason: %q", rec.Code, rec.Body.String())
			}
			return
		}

		var first cluster.StreamCountResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &first); err != nil {
			t.Fatalf("200 response is not a StreamCountResponse (%v): %q", err, rec.Body.String())
		}

		// Duplicate delivery: the retry must also succeed, be flagged as
		// memoized, and carry the identical support vector.
		rec2 := post(body)
		if rec2.Code != http.StatusOK {
			t.Fatalf("duplicate delivery rejected: %d %s", rec2.Code, rec2.Body.String())
		}
		var second cluster.StreamCountResponse
		if err := json.Unmarshal(rec2.Body.Bytes(), &second); err != nil {
			t.Fatalf("duplicate 200 is not a StreamCountResponse (%v): %q", err, rec2.Body.String())
		}
		if !second.Memoized {
			t.Fatalf("duplicate delivery was recounted, not memoized: %+v", second)
		}
		if len(second.SetCounts) != len(first.SetCounts) {
			t.Fatalf("memoized reply length %d != original %d", len(second.SetCounts), len(first.SetCounts))
		}
		for i := range first.SetCounts {
			if first.SetCounts[i] != second.SetCounts[i] {
				t.Fatalf("memoized reply diverges at %d: %d != %d", i, second.SetCounts[i], first.SetCounts[i])
			}
		}
	})
}
