package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
)

// Doc summarizes a coordinator's distributed run for the result document:
// cluster shape, RPC accounting, and whether (and why) the run degraded to
// local counting.
type Doc struct {
	// Workers is the configured worker count; LiveWorkers the live count
	// when the run finished.
	Workers     int `json:"workers"`
	LiveWorkers int `json:"live_workers"`
	Shards      int `json:"shards"`
	Passes      int `json:"passes"`
	// RPCs / Retries / DuplicateReplies account the count-and-load RPC
	// traffic of this job (retries are attempts beyond a shard's first).
	RPCs             int64 `json:"rpcs"`
	Retries          int64 `json:"retries,omitempty"`
	DuplicateReplies int64 `json:"duplicate_replies,omitempty"`
	// WorkerDeaths and Reassignments record the node-loss handling the
	// job performed.
	WorkerDeaths  int64 `json:"worker_deaths,omitempty"`
	Reassignments int64 `json:"reassignments,omitempty"`
	// LocalShardCounts is the number of shard passes the coordinator
	// counted itself (orphaned shards and degraded passes).
	LocalShardCounts int64 `json:"local_shard_counts,omitempty"`
	// Degraded reports the job fell below quorum and finished with local
	// counting; DegradedReason/DegradedPass say why and when.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	DegradedPass   int    `json:"degraded_pass,omitempty"`
}

// shardState is one horizontal partition of the job's dataset.
type shardState struct {
	id      string // SHA-256 hex of baskets
	baskets []byte
	data    *dataset.Dataset
	sc      *dataset.MemoryScanner // lazily built for local counting
	owner   *workerRef             // nil = unassigned (counted locally)
}

// scanner returns the shard's local scanner, building it on first use so
// remote-only runs never materialize local bitsets.
func (s *shardState) scanner() *dataset.MemoryScanner {
	if s.sc == nil {
		s.sc = dataset.NewScanner(s.data)
	}
	return s.sc
}

// Coordinator implements core.PassCounter over a Pool: each pass fans the
// candidate set out to the workers holding the dataset's shards and merges
// their count vectors at the barrier. It also implements core's
// ContextBinder and WorkerCounted optional interfaces.
//
// A coordinator is built per job and is driven from the mining goroutine;
// its own fan-out goroutines never outlive a pass.
type Coordinator struct {
	pool   *Pool
	jobID  string
	tracer obsv.Tracer

	shards []*shardState

	ctx        context.Context
	checkEvery int

	rngMu sync.Mutex
	rng   *rand.Rand

	statMu sync.Mutex
	stats  Doc
}

// NewCoordinator shards the dataset over the pool's workers and returns
// the PassCounter to inject into the mining options. Sharding is
// deterministic (contiguous partitions, content-addressed); assignment
// spreads shards round-robin over the workers live at build time, and
// every shard is also retained locally so any shard can be counted by the
// coordinator when no worker can serve it.
func NewCoordinator(jobID string, d *dataset.Dataset, pool *Pool, tracer obsv.Tracer) (*Coordinator, error) {
	cfg := pool.Config()
	workers := pool.Workers()
	n := len(workers) * cfg.ShardsPerWorker
	if n < 1 {
		n = 1
	}
	parts := d.Partitions(n)
	c := &Coordinator{
		pool:   pool,
		jobID:  jobID,
		tracer: tracer,
		rng:    rand.New(rand.NewSource(seedFrom(jobID))),
	}
	for _, part := range parts {
		var buf bytes.Buffer
		if err := dataset.WriteBasket(&buf, part); err != nil {
			return nil, fmt.Errorf("cluster: encode shard: %w", err)
		}
		c.shards = append(c.shards, &shardState{
			id:      ShardID(part.NumItems(), buf.Bytes()),
			baskets: buf.Bytes(),
			data:    part,
		})
	}
	c.stats.Workers = len(workers)
	c.stats.Shards = len(c.shards)
	// Initial assignment over the currently live set; a pass barrier
	// redoes this for dead owners, so an empty live set here just means
	// the first pass starts degraded or reassigns.
	live := pool.Live()
	if len(live) > 0 {
		for i, sh := range c.shards {
			sh.owner = live[i%len(live)]
		}
	}
	return c, nil
}

// seedFrom derives a deterministic jitter seed from the job id.
func seedFrom(jobID string) int64 {
	sum := sha256.Sum256([]byte(jobID))
	return int64(binary.LittleEndian.Uint64(sum[:8]) >> 1)
}

// BindContext implements core.ContextBinder.
func (c *Coordinator) BindContext(ctx context.Context, checkEvery int) {
	c.ctx = ctx
	c.checkEvery = checkEvery
}

// Workers implements core.WorkerCounted: the counting fan-out width.
func (c *Coordinator) Workers() int {
	if n := len(c.pool.Live()); n > 0 {
		return n
	}
	return 1
}

// Doc returns the run summary (safe to call after mining finished).
func (c *Coordinator) Doc() *Doc {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	doc := c.stats
	doc.LiveWorkers = len(c.pool.Live())
	return &doc
}

// CountItems implements core.PassCounter.
func (c *Coordinator) CountItems(numItems int, elems []itemset.Itemset, elemBits []*itemset.Bitset) ([]int64, []int64) {
	base := &CountRequest{Kind: KindItems, NumItems: numItems, Elems: elems}
	resps := c.runPass(base)
	itemCounts := make([]int64, numItems)
	elemCounts := make([]int64, len(elems))
	for _, r := range resps {
		counting.SumInto(itemCounts, r.ItemCounts)
		counting.SumInto(elemCounts, r.ElemCounts)
	}
	return itemCounts, elemCounts
}

// CountPairs implements core.PassCounter.
func (c *Coordinator) CountPairs(numItems int, live itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) (*counting.Triangle, []int64) {
	base := &CountRequest{Kind: KindPairs, NumItems: numItems, Live: live, Elems: elems}
	resps := c.runPass(base)
	tri := counting.NewTriangle(numItems, live)
	elemCounts := make([]int64, len(elems))
	for _, r := range resps {
		tri.Merge(counting.RestoreTriangle(numItems, live, r.PairCounts))
		counting.SumInto(elemCounts, r.ElemCounts)
	}
	return tri, elemCounts
}

// CountCandidates implements core.PassCounter.
func (c *Coordinator) CountCandidates(engine counting.Engine, candidates []itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) ([]int64, []int64) {
	numItems := c.universe()
	base := &CountRequest{
		Kind:       KindCandidates,
		NumItems:   numItems,
		Engine:     engine.String(),
		Candidates: candidates,
		Elems:      elems,
	}
	resps := c.runPass(base)
	var candCounts []int64
	if len(candidates) > 0 {
		candCounts = make([]int64, len(candidates))
	}
	elemCounts := make([]int64, len(elems))
	for _, r := range resps {
		counting.SumInto(candCounts, r.CandCounts)
		counting.SumInto(elemCounts, r.ElemCounts)
	}
	return candCounts, elemCounts
}

// universe returns the shared item universe of the shards.
func (c *Coordinator) universe() int {
	return c.shards[0].data.NumItems()
}

// expectedVec returns the expected response vector lengths for a request,
// used to validate worker replies before merging.
func expectedVec(req *CountRequest) (items, pairs, cands int) {
	switch req.Kind {
	case KindItems:
		items = req.NumItems
	case KindPairs:
		n := len(req.Live)
		pairs = n * (n - 1) / 2
	case KindCandidates:
		cands = len(req.Candidates)
	}
	return
}

// validResponse checks a worker reply is positionally mergeable.
func validResponse(req *CountRequest, resp *CountResponse) error {
	items, pairs, cands := expectedVec(req)
	if len(resp.ItemCounts) != items {
		return fmt.Errorf("item vector %d, want %d", len(resp.ItemCounts), items)
	}
	if len(resp.PairCounts) != pairs {
		return fmt.Errorf("pair vector %d, want %d", len(resp.PairCounts), pairs)
	}
	if len(resp.CandCounts) != cands {
		return fmt.Errorf("candidate vector %d, want %d", len(resp.CandCounts), cands)
	}
	if len(resp.ElemCounts) != len(req.Elems) {
		return fmt.Errorf("elem vector %d, want %d", len(resp.ElemCounts), len(req.Elems))
	}
	return nil
}

// runPass executes one pass barrier: quorum check, shard reassignment away
// from dead workers, fan-out with retry, and the join. It returns exactly
// one response per shard — remote or, when a shard exhausts the live
// workers, locally counted — so the merge is structurally immune to
// double-counting. Cancellation unwinds with the same typed abort as
// in-process counters, from the mining goroutine only.
func (c *Coordinator) runPass(base *CountRequest) []*CountResponse {
	c.statMu.Lock()
	c.stats.Passes++
	pass := c.stats.Passes
	degraded := c.stats.Degraded
	c.statMu.Unlock()
	base.JobID = c.jobID
	base.Pass = pass

	mfi.CheckContext(c.ctx)

	if !degraded {
		live := c.pool.Live()
		if len(live) < c.pool.Config().Quorum {
			c.degrade(pass, fmt.Sprintf("live workers %d below quorum %d", len(live), c.pool.Config().Quorum))
			degraded = true
		} else {
			c.rebalance(pass, live)
		}
	}
	if degraded {
		return c.countAllLocal(base)
	}

	results := make([]*CountResponse, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		i, sh := i, sh
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = c.countShardRemote(base, sh)
		}()
	}
	wg.Wait()
	mfi.CheckContext(c.ctx)

	// A nil slot means the shard could not be counted remotely and the
	// goroutine deferred local counting to the mining goroutine (so the
	// scan guard may raise the typed abort from the right stack).
	for i, sh := range c.shards {
		if results[i] == nil {
			results[i] = c.countLocal(base, sh, pass)
		}
	}
	return results
}

// degrade switches the job to local counting permanently, recording the
// transition in stats, metrics, trace, and log.
func (c *Coordinator) degrade(pass int, reason string) {
	c.statMu.Lock()
	c.stats.Degraded = true
	c.stats.DegradedReason = reason
	c.stats.DegradedPass = pass
	c.statMu.Unlock()
	if m := c.pool.met; m != nil {
		m.degraded.Inc()
	}
	live := len(c.pool.Live())
	c.pool.logf("cluster: job %s degrading to local counting at pass %d: %s", c.jobID, pass, reason)
	obsv.EmitCluster(c.tracer, obsv.ClusterEvent{Event: "degraded", Pass: pass, Reason: reason, Live: live})
}

// rebalance reassigns shards owned by dead (or no) workers round-robin
// over the live set — the pass-barrier reassignment rule.
func (c *Coordinator) rebalance(pass int, live []*workerRef) {
	next := 0
	for _, sh := range c.shards {
		if sh.owner != nil && sh.owner.isAlive() {
			continue
		}
		from := ""
		if sh.owner != nil {
			from = sh.owner.addr
		}
		sh.owner = live[next%len(live)]
		next++
		c.statMu.Lock()
		c.stats.Reassignments++
		c.statMu.Unlock()
		if m := c.pool.met; m != nil {
			m.reassignments.Inc()
		}
		c.pool.logf("cluster: job %s pass %d: shard %s reassigned %s -> %s", c.jobID, pass, sh.id[:12], from, sh.owner.addr)
		obsv.EmitCluster(c.tracer, obsv.ClusterEvent{
			Event: "reassign", Pass: pass, Worker: sh.owner.addr, Shard: sh.id[:12],
			Reason: "owner dead", Live: len(live),
		})
	}
}

// countShardRemote drives one shard's count to completion against the
// cluster: per-attempt timeouts, capped jittered exponential backoff,
// worker-death declaration after the attempt budget, and failover to any
// live worker not yet tried this pass. It returns nil when no live worker
// could serve the shard (the caller counts locally) or when the run's
// context was cancelled (the caller raises the abort).
func (c *Coordinator) countShardRemote(base *CountRequest, sh *shardState) *CountResponse {
	cfg := c.pool.Config()
	req := *base
	req.ShardID = sh.id
	tried := map[*workerRef]bool{}
	w := sh.owner
	for {
		if c.ctx != nil && c.ctx.Err() != nil {
			return nil
		}
		if w == nil || !w.isAlive() || tried[w] {
			w = c.pickWorker(tried)
			if w == nil {
				return nil // no live worker left for this shard
			}
		}
		tried[w] = true
		if resp := c.tryWorker(&req, sh, w); resp != nil {
			sh.owner = w // next pass starts from the worker that delivered
			return resp
		}
		// Attempt budget exhausted: the worker is dead to this job.
		if c.pool.markDead(w, fmt.Sprintf("job %s pass %d: %d attempts failed", c.jobID, base.Pass, cfg.MaxAttempts)) {
			c.statMu.Lock()
			c.stats.WorkerDeaths++
			c.statMu.Unlock()
			obsv.EmitCluster(c.tracer, obsv.ClusterEvent{
				Event: "worker_dead", Pass: base.Pass, Worker: w.addr, Shard: sh.id[:12],
				Reason: "rpc attempts exhausted", Live: len(c.pool.Live()),
			})
		}
		w = nil
	}
}

// tryWorker runs the per-worker attempt loop for one shard count: ensure
// the shard is pushed, then count, backing off between attempts. A nil
// return means the budget is exhausted.
func (c *Coordinator) tryWorker(req *CountRequest, sh *shardState, w *workerRef) *CountResponse {
	cfg := c.pool.Config()
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.statMu.Lock()
			c.stats.Retries++
			c.statMu.Unlock()
			if m := c.pool.met; m != nil {
				m.rpcRetries.Inc()
			}
			if !c.backoff(attempt) {
				return nil // cancelled while waiting
			}
		}
		ctx, cancel := c.rpcContext()
		if !w.hasShard(sh.id) {
			c.addRPCs(1)
			err := c.pool.loadShard(ctx, w, &LoadShardRequest{
				ShardID:  sh.id,
				NumItems: sh.data.NumItems(),
				Baskets:  string(sh.baskets),
			})
			if err != nil {
				cancel()
				continue
			}
		}
		c.addRPCs(1)
		resp, err := c.pool.count(ctx, w, req)
		cancel()
		if err != nil {
			var re *remoteError
			if isRemoteReason(err, ReasonUnknownShard, &re) {
				// The worker restarted since the push: re-push and retry
				// without charging the attempt as a network failure.
				w.setShard(sh.id, false)
			}
			continue
		}
		if verr := validResponse(req, resp); verr != nil {
			c.pool.logf("cluster: job %s: worker %s returned unmergeable reply for shard %s: %v",
				c.jobID, w.addr, sh.id[:12], verr)
			continue
		}
		if resp.Memoized {
			c.statMu.Lock()
			c.stats.DuplicateReplies++
			c.statMu.Unlock()
			if m := c.pool.met; m != nil {
				m.duplicateReplies.Inc()
			}
		}
		return resp
	}
	return nil
}

// addRPCs accounts issued RPC attempts in the job's doc.
func (c *Coordinator) addRPCs(n int64) {
	c.statMu.Lock()
	c.stats.RPCs += n
	c.statMu.Unlock()
}

// isRemoteReason reports whether err is a remote wire error with the given
// reason, storing it through re.
func isRemoteReason(err error, reason string, re **remoteError) bool {
	r, ok := err.(*remoteError)
	if !ok {
		return false
	}
	*re = r
	return r.Reason == reason
}

// pickWorker returns a live worker not yet tried, or nil.
func (c *Coordinator) pickWorker(tried map[*workerRef]bool) *workerRef {
	for _, w := range c.pool.Live() {
		if !tried[w] {
			return w
		}
	}
	return nil
}

// rpcContext derives the per-attempt timeout context.
func (c *Coordinator) rpcContext() (context.Context, context.CancelFunc) {
	parent := c.ctx
	if parent == nil {
		parent = context.Background()
	}
	return context.WithTimeout(parent, c.pool.Config().RPCTimeout)
}

// backoff sleeps the capped, jittered exponential backoff for the given
// retry ordinal; false reports cancellation.
func (c *Coordinator) backoff(attempt int) bool {
	cfg := c.pool.Config()
	d := cfg.BackoffBase << (attempt - 1)
	if d > cfg.BackoffCap || d <= 0 {
		d = cfg.BackoffCap
	}
	c.rngMu.Lock()
	jitter := 0.5 + c.rng.Float64() // ×[0.5, 1.5)
	c.rngMu.Unlock()
	d = time.Duration(float64(d) * jitter)
	if c.ctx == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// countLocal counts one shard on the mining goroutine — the fallback when
// no live worker can serve it. It uses the same pure procedure as the
// workers, so the merged result is unchanged; the scan guard raises the
// typed abort on cancellation exactly like in-process counters.
func (c *Coordinator) countLocal(base *CountRequest, sh *shardState, pass int) *CountResponse {
	guard := mfi.NewScanGuard(c.ctx, c.checkEvery)
	req := *base
	req.ShardID = sh.id
	c.statMu.Lock()
	c.stats.LocalShardCounts++
	degraded := c.stats.Degraded
	c.statMu.Unlock()
	if m := c.pool.met; m != nil {
		m.localCounts.Inc()
	}
	if !degraded {
		c.pool.logf("cluster: job %s pass %d: counting shard %s locally (no live worker)", c.jobID, pass, sh.id[:12])
		obsv.EmitCluster(c.tracer, obsv.ClusterEvent{
			Event: "local_count", Pass: pass, Shard: sh.id[:12],
			Reason: "no live worker", Live: len(c.pool.Live()),
		})
	}
	resp, err := countShard(sh.scanner(), &req, func() error {
		guard.Tick()
		return nil
	})
	if err != nil {
		// Unreachable: the local tick never returns an error (the guard
		// panics the typed abort instead).
		panic(mfi.NewAbort(err))
	}
	return resp
}

// countAllLocal counts every shard sequentially on the mining goroutine —
// the degraded mode.
func (c *Coordinator) countAllLocal(base *CountRequest) []*CountResponse {
	out := make([]*CountResponse, len(c.shards))
	for i, sh := range c.shards {
		out[i] = c.countLocal(base, sh, base.Pass)
	}
	return out
}
