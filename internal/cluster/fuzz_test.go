package cluster_test

// FuzzClusterMessage throws arbitrary bytes at a worker's wire endpoints:
// the contract is that a worker never panics, answers 200 only for a
// well-formed, semantically valid message, and answers every rejection as a
// typed JSON error document with a machine-readable reason — the same
// contract FuzzJobRequest pins for the public server API.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"pincer/internal/cluster"
)

func FuzzClusterMessage(f *testing.F) {
	shard := "1 2 3\n2 3\n"
	id := cluster.ShardID(8, []byte(shard))

	// Seeds: valid load and count messages on each route, then one per
	// rejection class the decoders must map to a typed error.
	f.Add("/cluster/v1/shards", []byte(fmt.Sprintf(`{"shard_id":%q,"num_items":8,"baskets":%q}`, id, shard)))
	f.Add("/cluster/v1/shards", []byte(fmt.Sprintf(`{"shard_id":%q,"num_items":8,"baskets":"tampered"}`, id)))
	f.Add("/cluster/v1/shards", []byte(`{"shard_id":"short","num_items":8,"baskets":""}`))
	f.Add("/cluster/v1/shards", []byte(`{"shard_id":"ZZ","num_items":-1}`))
	f.Add("/cluster/v1/count", []byte(fmt.Sprintf(`{"job_id":"j","pass":1,"kind":"items","shard_id":%q,"num_items":8}`, id)))
	f.Add("/cluster/v1/count", []byte(fmt.Sprintf(`{"job_id":"j","pass":2,"kind":"pairs","shard_id":%q,"num_items":8,"live":[1,2,3]}`, id)))
	f.Add("/cluster/v1/count", []byte(fmt.Sprintf(`{"job_id":"j","pass":3,"kind":"candidates","shard_id":%q,"num_items":8,"engine":"trie","candidates":[[1,2,3]]}`, id)))
	f.Add("/cluster/v1/count", []byte(fmt.Sprintf(`{"job_id":"j","pass":1,"kind":"items","shard_id":%q,"num_items":8,"elems":[[1,2]]}`, id)))
	f.Add("/cluster/v1/count", []byte(fmt.Sprintf(`{"job_id":"j","pass":1,"kind":"nope","shard_id":%q,"num_items":8}`, id)))
	f.Add("/cluster/v1/count", []byte(fmt.Sprintf(`{"job_id":"j","pass":1,"kind":"items","shard_id":%q,"num_items":8,"live":[1]}`, id)))
	f.Add("/cluster/v1/count", []byte(fmt.Sprintf(`{"job_id":"j","pass":1,"kind":"items","shard_id":%q,"num_items":8,"candidates":[[1]]}`, id)))
	f.Add("/cluster/v1/count", []byte(fmt.Sprintf(`{"job_id":"j","pass":3,"kind":"candidates","shard_id":%q,"num_items":8,"engine":"quantum","candidates":[[1]]}`, id)))
	f.Add("/cluster/v1/count", []byte(fmt.Sprintf(`{"job_id":"j","pass":2,"kind":"pairs","shard_id":%q,"num_items":8,"live":[3,2,1]}`, id)))
	f.Add("/cluster/v1/count", []byte(fmt.Sprintf(`{"job_id":"j","pass":2,"kind":"pairs","shard_id":%q,"num_items":4,"live":[1,9]}`, id)))
	f.Add("/cluster/v1/count", []byte(fmt.Sprintf(`{"job_id":"j","pass":-1,"kind":"items","shard_id":%q,"num_items":8}`, id)))
	f.Add("/cluster/v1/count", []byte(fmt.Sprintf(`{"job_id":"j","pass":1,"kind":"items","shard_id":%q,"num_items":99999999}`, id)))
	f.Add("/cluster/v1/count", []byte(fmt.Sprintf(`{"job_id":"j","pass":1,"kind":"items","shard_id":%q,"num_items":8,"bogus":1}`, id)))
	f.Add("/cluster/v1/count", []byte(`{not json`))
	f.Add("/cluster/v1/count", []byte(``))
	f.Add("/cluster/v1/count", []byte(`null`))
	f.Add("/cluster/v1/count", []byte(`{"job_id":"j"} trailing`))
	f.Add("/cluster/v1/other", []byte(`{}`))

	w := cluster.NewWorker(cluster.WorkerConfig{ID: "fuzz", MaxBodyBytes: 1 << 20})

	f.Fuzz(func(t *testing.T, path string, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "http://worker/"+sanitizePath(path), bytes.NewReader(body))
		rec := httptest.NewRecorder()
		w.ServeHTTP(rec, req) // must not panic, whatever the bytes
		if rec.Code == http.StatusOK {
			return
		}
		var e struct {
			Error  string `json:"error"`
			Reason string `json:"reason"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Fatalf("%d response is not the error JSON shape (%v): %q", rec.Code, err, rec.Body.String())
		}
		if e.Reason == "" {
			t.Fatalf("%d response lacks typed reason: %q", rec.Code, rec.Body.String())
		}
	})
}

// sanitizePath keeps fuzzed paths legal for http.NewRequest while leaving
// the router's behavior fully exercised.
func sanitizePath(p string) string {
	clean := make([]byte, 0, len(p))
	for i := 0; i < len(p); i++ {
		c := p[i]
		if c > ' ' && c < 0x7f && c != '#' && c != '?' && c != '%' {
			clean = append(clean, c)
		}
	}
	return string(clean)
}
