package cluster

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pincer/internal/dataset"
)

// WorkerConfig tunes a Worker. The zero value is usable.
type WorkerConfig struct {
	// ID identifies the worker in ping replies and count responses
	// (default: derived from the first shard push; set it for real
	// deployments).
	ID string
	// MaxShards bounds the content-addressed shard store; beyond it the
	// least recently counted shard is evicted (the coordinator re-pushes
	// on unknown_shard). Default 128.
	MaxShards int
	// MaxBodyBytes caps a request body. Default 64 MiB.
	MaxBodyBytes int64
	// MemoSize bounds the idempotent-reply memo. Default 64.
	MemoSize int
	// Logf, when set, receives one line per shard load and error.
	Logf func(format string, args ...interface{})

	// The remaining fields are fault-injection seams for the node-loss
	// harness; production workers leave them nil.

	// Down, when set and returning true, fails every request with 503
	// reason "down" — an administratively killed node.
	Down func() bool
	// CountHook, when set, runs before each count; a non-nil error fails
	// the request with 500 reason "injected" (a pass-barrier kill).
	CountHook func(req *CountRequest) error
	// StreamCountHook is CountHook's analog for stream delta counts (a
	// batch-barrier kill).
	StreamCountHook func(req *StreamCountRequest) error
	// TxHook, when set, runs once per scanned transaction; a non-nil
	// error aborts the scan and fails the request with 500 reason
	// "injected" (a mid-scan kill).
	TxHook func() error
}

// workerShard is one held shard: the parsed dataset wrapped in a scanner
// whose per-transaction bitsets are materialized once at load, so
// concurrent count requests over the same shard share read-only state.
type workerShard struct {
	id string
	sc *dataset.MemoryScanner
}

// Worker is the shard-holding counting node: an http.Handler serving the
// cluster wire protocol. Mount it on any mux or serve it directly
// (`pincerd -role worker`).
type Worker struct {
	cfg WorkerConfig

	mu         sync.Mutex
	shards     map[string]*workerShard
	shardOrder []string // least recently counted first
	memo       map[string]*CountResponse
	memoOrder  []string
	// streamMemo is the idempotent-reply memo of the stream delta-count
	// route, bounded by the same MemoSize independently of memo.
	streamMemo      map[string]*StreamCountResponse
	streamMemoOrder []string

	served atomic.Int64
}

// NewWorker builds a worker.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.MaxShards <= 0 {
		cfg.MaxShards = 128
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.MemoSize <= 0 {
		cfg.MemoSize = 64
	}
	return &Worker{
		cfg:        cfg,
		shards:     map[string]*workerShard{},
		memo:       map[string]*CountResponse{},
		streamMemo: map[string]*StreamCountResponse{},
	}
}

func (w *Worker) logf(format string, args ...interface{}) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// ID returns the worker's identity.
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id()
}

func (w *Worker) id() string {
	if w.cfg.ID != "" {
		return w.cfg.ID
	}
	return "worker"
}

// ServeHTTP implements the cluster wire protocol.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if w.cfg.Down != nil && w.cfg.Down() {
		writeWireError(rw, wireErrf(http.StatusServiceUnavailable, ReasonDown, "worker is down"))
		return
	}
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/cluster/v1/ping":
		w.handlePing(rw)
	case r.Method == http.MethodPost && r.URL.Path == "/cluster/v1/shards":
		w.handleLoadShard(rw, r)
	case r.Method == http.MethodPost && r.URL.Path == "/cluster/v1/count":
		w.handleCount(rw, r)
	case r.Method == http.MethodPost && r.URL.Path == "/cluster/v1/stream/count":
		w.handleStreamCount(rw, r)
	default:
		writeWireError(rw, wireErrf(http.StatusNotFound, ReasonBadRoute, "no route %s %s", r.Method, r.URL.Path))
	}
}

func (w *Worker) handlePing(rw http.ResponseWriter) {
	w.mu.Lock()
	shards := make([]string, 0, len(w.shards))
	for id := range w.shards {
		shards = append(shards, id)
	}
	id := w.id()
	w.mu.Unlock()
	sort.Strings(shards)
	writeWireJSON(rw, http.StatusOK, WorkerStatus{
		ID:           id,
		Shards:       shards,
		CountsServed: w.served.Load(),
	})
}

func (w *Worker) handleLoadShard(rw http.ResponseWriter, r *http.Request) {
	req, err := DecodeLoadShard(r.Body, w.cfg.MaxBodyBytes)
	if err != nil {
		writeWireError(rw, err)
		return
	}
	if sum := ShardID(req.NumItems, []byte(req.Baskets)); sum != req.ShardID {
		writeWireError(rw, wireErrf(http.StatusBadRequest, ReasonShardMismatch,
			"shard universe+bytes hash to %s, not the claimed %s", sum[:12], req.ShardID[:12]))
		return
	}

	w.mu.Lock()
	if sh, ok := w.shards[req.ShardID]; ok {
		w.mu.Unlock()
		writeWireJSON(rw, http.StatusOK, LoadShardResponse{ShardID: req.ShardID, Transactions: sh.sc.Len(), Cached: true})
		return
	}
	w.mu.Unlock()

	// Parse outside the lock; pushes of distinct shards proceed in parallel.
	d, perr := dataset.ReadBasket(strings.NewReader(req.Baskets))
	if perr != nil {
		writeWireError(rw, wireErrf(http.StatusBadRequest, ReasonBadMessage, "parse shard: %v", perr))
		return
	}
	if req.NumItems > 0 {
		if d.NumItems() > req.NumItems {
			writeWireError(rw, wireErrf(http.StatusBadRequest, ReasonBadMessage,
				"shard uses %d items but the declared universe is %d", d.NumItems(), req.NumItems))
			return
		}
		d.SetNumItems(req.NumItems)
	}
	sh := &workerShard{id: req.ShardID, sc: dataset.NewScanner(d)}

	w.mu.Lock()
	if _, ok := w.shards[req.ShardID]; !ok {
		w.shards[req.ShardID] = sh
		w.shardOrder = append(w.shardOrder, req.ShardID)
		for len(w.shards) > w.cfg.MaxShards {
			evict := w.shardOrder[0]
			w.shardOrder = w.shardOrder[1:]
			delete(w.shards, evict)
			w.logf("cluster worker: evicted shard %s", evict[:12])
		}
	}
	w.mu.Unlock()
	w.logf("cluster worker: loaded shard %s (%d tx, universe %d)", req.ShardID[:12], d.Len(), d.NumItems())
	writeWireJSON(rw, http.StatusOK, LoadShardResponse{ShardID: req.ShardID, Transactions: d.Len()})
}

func (w *Worker) handleCount(rw http.ResponseWriter, r *http.Request) {
	req, err := DecodeCount(r.Body, w.cfg.MaxBodyBytes)
	if err != nil {
		writeWireError(rw, err)
		return
	}

	key := memoKey(req)
	w.mu.Lock()
	if resp, ok := w.memo[key]; ok {
		id := w.id()
		w.mu.Unlock()
		// Duplicate delivery of a completed request: answer from the memo
		// and flag it so the coordinator can count the detection.
		dup := *resp
		dup.WorkerID = id
		dup.Memoized = true
		w.served.Add(1)
		writeWireJSON(rw, http.StatusOK, &dup)
		return
	}
	sh, ok := w.shards[req.ShardID]
	if ok {
		w.touchShard(req.ShardID)
	}
	id := w.id()
	w.mu.Unlock()
	if !ok {
		writeWireError(rw, wireErrf(http.StatusNotFound, ReasonUnknownShard, "shard %s not loaded", req.ShardID[:12]))
		return
	}
	if sh.sc.NumItems() != req.NumItems {
		writeWireError(rw, wireErrf(http.StatusBadRequest, ReasonBadMessage,
			"request universe %d does not match shard universe %d", req.NumItems, sh.sc.NumItems()))
		return
	}
	if w.cfg.CountHook != nil {
		if herr := w.cfg.CountHook(req); herr != nil {
			writeWireError(rw, wireErrf(http.StatusInternalServerError, ReasonInjected, "%v", herr))
			return
		}
	}

	resp, cerr := countShard(sh.sc, req, w.cfg.TxHook)
	if cerr != nil {
		writeWireError(rw, wireErrf(http.StatusInternalServerError, ReasonInjected, "%v", cerr))
		return
	}
	resp.WorkerID = id

	w.mu.Lock()
	if _, ok := w.memo[key]; !ok {
		w.memo[key] = resp
		w.memoOrder = append(w.memoOrder, key)
		for len(w.memo) > w.cfg.MemoSize {
			evict := w.memoOrder[0]
			w.memoOrder = w.memoOrder[1:]
			delete(w.memo, evict)
		}
	}
	w.mu.Unlock()
	w.served.Add(1)
	writeWireJSON(rw, http.StatusOK, resp)
}

// handleStreamCount serves one stream delta count — handleCount's analog
// for the maintainer's MFS∪border verification counts, with the same
// idempotency memo and fault seams.
func (w *Worker) handleStreamCount(rw http.ResponseWriter, r *http.Request) {
	req, err := DecodeStreamCount(r.Body, w.cfg.MaxBodyBytes)
	if err != nil {
		writeWireError(rw, err)
		return
	}

	key := streamMemoKey(req)
	w.mu.Lock()
	if resp, ok := w.streamMemo[key]; ok {
		id := w.id()
		w.mu.Unlock()
		dup := *resp
		dup.WorkerID = id
		dup.Memoized = true
		w.served.Add(1)
		writeWireJSON(rw, http.StatusOK, &dup)
		return
	}
	sh, ok := w.shards[req.ShardID]
	if ok {
		w.touchShard(req.ShardID)
	}
	id := w.id()
	w.mu.Unlock()
	if !ok {
		writeWireError(rw, wireErrf(http.StatusNotFound, ReasonUnknownShard, "shard %s not loaded", req.ShardID[:12]))
		return
	}
	if sh.sc.NumItems() != req.NumItems {
		writeWireError(rw, wireErrf(http.StatusBadRequest, ReasonBadMessage,
			"request universe %d does not match shard universe %d", req.NumItems, sh.sc.NumItems()))
		return
	}
	if w.cfg.StreamCountHook != nil {
		if herr := w.cfg.StreamCountHook(req); herr != nil {
			writeWireError(rw, wireErrf(http.StatusInternalServerError, ReasonInjected, "%v", herr))
			return
		}
	}

	resp, cerr := countStreamShard(sh.sc, req, w.cfg.TxHook)
	if cerr != nil {
		writeWireError(rw, wireErrf(http.StatusInternalServerError, ReasonInjected, "%v", cerr))
		return
	}
	resp.WorkerID = id

	w.mu.Lock()
	if _, ok := w.streamMemo[key]; !ok {
		w.streamMemo[key] = resp
		w.streamMemoOrder = append(w.streamMemoOrder, key)
		for len(w.streamMemo) > w.cfg.MemoSize {
			evict := w.streamMemoOrder[0]
			w.streamMemoOrder = w.streamMemoOrder[1:]
			delete(w.streamMemo, evict)
		}
	}
	w.mu.Unlock()
	w.served.Add(1)
	writeWireJSON(rw, http.StatusOK, resp)
}

// touchShard moves a shard to the recently-used end (caller holds mu).
func (w *Worker) touchShard(id string) {
	for i, s := range w.shardOrder {
		if s == id {
			copy(w.shardOrder[i:], w.shardOrder[i+1:])
			w.shardOrder[len(w.shardOrder)-1] = id
			return
		}
	}
}

// memoKey is the idempotency key of a count request: the pass stamp plus a
// digest of the full payload, so even a (buggy) payload change under a
// reused stamp cannot be answered with the wrong memo entry.
func memoKey(req *CountRequest) string {
	b, _ := json.Marshal(req) // struct marshal cannot fail
	sum := sha256.Sum256(b)
	return fmt.Sprintf("%s|%d|%s|%s|%x", req.JobID, req.Pass, req.Kind, req.ShardID[:16], sum[:8])
}

// streamMemoKey is the idempotency key of a stream delta count: the batch
// stamp plus a digest of the full payload.
func streamMemoKey(req *StreamCountRequest) string {
	b, _ := json.Marshal(req) // struct marshal cannot fail
	sum := sha256.Sum256(b)
	return fmt.Sprintf("%s|%d|%s|%s|%x", req.StreamID, req.Seq, req.Side, req.ShardID[:16], sum[:8])
}

func writeWireJSON(rw http.ResponseWriter, status int, v interface{}) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(v)
}

// writeWireError renders err as a typed ErrorDoc (non-wire errors become a
// 500 with reason "internal").
func writeWireError(rw http.ResponseWriter, err error) {
	we, ok := err.(*WireError)
	if !ok {
		we = wireErrf(http.StatusInternalServerError, "internal", "%v", err)
	}
	writeWireJSON(rw, we.Status, ErrorDoc{Error: we.Msg, Reason: we.Reason})
}
