package cluster

// Distributed streams: the stream-side of the wire protocol plus the
// StreamCoordinator that fans a maintainer's delta counting out over the
// pool.
//
// Incremental maintenance verifies each batch by counting the maintained
// MFS and negative border over the append and evict deltas (and, after a
// re-mine, the fresh border over the whole window). Those are plain
// support counts, additive over disjoint horizontal partitions, so the
// StreamCoordinator shards each delta with the same content-addressed
// scheme as job counting, pushes the shards on demand, and merges the
// per-shard count vectors — byte-identical to a single local scan.
//
// The failure model matches the job coordinator with one deliberate
// difference: degradation below quorum is sticky per batch, not per
// stream. A stream is long-lived, so giving up on the cluster forever
// because one batch arrived during an outage would be wrong; instead the
// server drains the per-batch doc (TakeDoc) after every append, which
// re-arms the quorum check for the next batch.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/obsv"
)

// Stream delta sides: which part of a batch the counted sets are verified
// against. "append" and "evict" are the two halves of the window delta;
// "border" is the full-window recount of a freshly re-mined negative
// border.
const (
	StreamSideAppend = "append"
	StreamSideEvict  = "evict"
	StreamSideBorder = "border"
)

// StreamCountRequest asks a worker to count a batch of maintained itemsets
// over one delta shard. The (StreamID, Seq, Side, ShardID) stamp
// identifies the logical request across retries, and workers key their
// reply memo by the stamp plus a payload digest, exactly like job counts.
// Sets carries one antichain (the maintained MFS or border) but the
// protocol does not rely on that: workers count by per-transaction subset
// tests, which are correct for any set list.
type StreamCountRequest struct {
	StreamID string `json:"stream_id"`
	// Seq is the batch sequence number the delta belongs to.
	Seq int64 `json:"seq"`
	// Side is one of the StreamSide* constants.
	Side string `json:"side"`
	// ShardID names the delta shard to count over (must be loaded first).
	ShardID string `json:"shard_id"`
	// NumItems is the stream's item universe (must match the loaded shard).
	NumItems int `json:"num_items"`
	// Sets are the itemsets whose supports over the shard are wanted.
	Sets []itemset.Itemset `json:"sets"`
}

// StreamCountResponse carries one shard's support vector, positionally
// parallel to the request's Sets.
type StreamCountResponse struct {
	WorkerID     string `json:"worker_id"`
	ShardID      string `json:"shard_id"`
	Seq          int64  `json:"seq"`
	Side         string `json:"side"`
	Transactions int    `json:"transactions"`
	// Memoized reports the reply was served from the worker's idempotency
	// memo — a detected duplicate delivery.
	Memoized  bool    `json:"memoized,omitempty"`
	SetCounts []int64 `json:"set_counts"`
}

// DecodeStreamCount decodes and validates a stream delta-count request
// (body capped at limit bytes): known side, plausible universe, at least
// one set, and every set sorted, duplicate-free, and within the declared
// universe.
func DecodeStreamCount(r io.Reader, limit int64) (*StreamCountRequest, error) {
	var req StreamCountRequest
	if err := decodeStrict(r, limit, &req); err != nil {
		return nil, err
	}
	if req.StreamID == "" {
		return nil, wireErrf(400, ReasonBadMessage, "stream_id empty")
	}
	if req.Seq < 1 {
		return nil, wireErrf(400, ReasonBadMessage, "seq %d below 1", req.Seq)
	}
	switch req.Side {
	case StreamSideAppend, StreamSideEvict, StreamSideBorder:
	default:
		return nil, wireErrf(400, ReasonBadMessage, "unknown side %q", req.Side)
	}
	if err := validShardID(req.ShardID); err != nil {
		return nil, err
	}
	if req.NumItems <= 0 || req.NumItems > maxWireUniverse {
		return nil, wireErrf(400, ReasonBadMessage, "num_items %d outside [1, %d]", req.NumItems, maxWireUniverse)
	}
	if len(req.Sets) == 0 {
		return nil, wireErrf(400, ReasonBadMessage, "sets empty (nothing to count)")
	}
	for i, s := range req.Sets {
		if len(s) == 0 {
			return nil, wireErrf(400, ReasonBadMessage, "sets[%d] empty", i)
		}
		if err := validSet(s, req.NumItems, fmt.Sprintf("sets[%d]", i)); err != nil {
			return nil, err
		}
	}
	return &req, nil
}

// countStreamShard counts each requested set over one shard — the pure
// procedure shared by the worker's handler and the coordinator's local
// fallback. Direct per-transaction bitset subset tests are used
// unconditionally: unlike MFCS elements, the wire does not promise the
// sets form an antichain (and delta shards are small), so the trie
// shortcut is not safe to assume.
func countStreamShard(sc *dataset.MemoryScanner, req *StreamCountRequest, tick func() error) (*StreamCountResponse, error) {
	resp := &StreamCountResponse{ShardID: req.ShardID, Seq: req.Seq, Side: req.Side, Transactions: sc.Len()}
	counts := make([]int64, len(req.Sets))
	setBits := bitsetsOf(req.NumItems, req.Sets)
	var abort error
	sc.Scan(func(tx itemset.Itemset, bits *itemset.Bitset) {
		if abort != nil {
			return
		}
		if tick != nil {
			if err := tick(); err != nil {
				abort = err
				return
			}
		}
		for i, sb := range setBits {
			if sb.IsSubsetOf(bits) {
				counts[i]++
			}
		}
	})
	if abort != nil {
		return nil, abort
	}
	resp.SetCounts = counts
	return resp, nil
}

// streamCount performs one stream delta-count RPC attempt.
func (p *Pool) streamCount(ctx context.Context, w *workerRef, req *StreamCountRequest) (*StreamCountResponse, error) {
	var resp StreamCountResponse
	if err := p.postJSON(ctx, w, "/cluster/v1/stream/count", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// StreamDoc summarizes one batch's distributed delta counting for the
// stream's delta document — the per-batch analog of Doc. The server
// drains it with TakeDoc after every append.
type StreamDoc struct {
	// Workers is the configured worker count; LiveWorkers the live count
	// when the batch finished.
	Workers     int `json:"workers"`
	LiveWorkers int `json:"live_workers"`
	// Shards is the number of delta shards counted; Counts the number of
	// delta-count fan-outs (append/evict/border sides) the batch ran.
	Shards int64 `json:"shards,omitempty"`
	Counts int64 `json:"counts,omitempty"`
	// RPCs / Retries / DuplicateReplies account the count-and-load RPC
	// traffic (retries are attempts beyond a shard's first).
	RPCs             int64 `json:"rpcs,omitempty"`
	Retries          int64 `json:"retries,omitempty"`
	DuplicateReplies int64 `json:"duplicate_replies,omitempty"`
	// WorkerDeaths and Failovers record mid-count node-loss handling: a
	// failover re-drives a shard against the next live worker — the
	// batch-barrier analog of pass reassignment.
	WorkerDeaths int64 `json:"worker_deaths,omitempty"`
	Failovers    int64 `json:"failovers,omitempty"`
	// LocalShardCounts is the number of shards the coordinator counted
	// itself (orphaned shards and degraded batches).
	LocalShardCounts int64 `json:"local_shard_counts,omitempty"`
	// Degraded reports the batch fell below quorum and was counted
	// locally. Unlike job degradation this is sticky per batch only: the
	// next batch re-checks quorum.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Mine carries the distribution docs of any warm-started re-mine this
	// batch triggered (those passes fan out over a job Coordinator).
	Mine []*Doc `json:"mine,omitempty"`
}

// StreamCoordinator fans a stream's delta counting out over a Pool. One
// StreamCoordinator serves a stream for its whole life; each append's
// deltas are sharded, content-addressed, pushed on demand, and counted
// with the job coordinator's failure model (per-attempt timeouts, capped
// jittered backoff, death declaration on RPC exhaustion, failover to any
// untried live worker, local fallback when none remains).
//
// CountSets is driven from the maintainer's apply path, which the server
// serializes per stream; the fan-out goroutines never outlive a call.
type StreamCoordinator struct {
	pool     *Pool
	streamID string
	tracer   obsv.Tracer

	rngMu sync.Mutex
	rng   *rand.Rand

	mu  sync.Mutex
	doc StreamDoc
}

// NewStreamCoordinator pins a stream to the pool.
func NewStreamCoordinator(streamID string, pool *Pool, tracer obsv.Tracer) *StreamCoordinator {
	return &StreamCoordinator{
		pool:     pool,
		streamID: streamID,
		tracer:   tracer,
		rng:      rand.New(rand.NewSource(seedFrom(streamID))),
	}
}

// TakeDoc returns the distribution doc accumulated since the last call and
// resets it — called once per batch, which is also what re-arms the
// quorum check after a degraded batch.
func (c *StreamCoordinator) TakeDoc() *StreamDoc {
	c.mu.Lock()
	doc := c.doc
	c.doc = StreamDoc{}
	c.mu.Unlock()
	doc.Workers = len(c.pool.Workers())
	doc.LiveWorkers = len(c.pool.Live())
	return &doc
}

// CountSets returns the support of each set over d, counted over the
// cluster. Counts are additive over the contiguous shards, so the merged
// vector is byte-identical to one local scan of d regardless of worker
// count, failovers, or degradation.
func (c *StreamCoordinator) CountSets(seq int64, side string, d *dataset.Dataset, sets []itemset.Itemset) []int64 {
	counts := make([]int64, len(sets))
	if d == nil || d.Len() == 0 || len(sets) == 0 {
		return counts
	}
	c.mu.Lock()
	c.doc.Counts++
	degraded := c.doc.Degraded
	c.mu.Unlock()

	cfg := c.pool.Config()
	live := c.pool.Live()
	if !degraded && len(live) < cfg.Quorum {
		c.degrade(seq, fmt.Sprintf("live workers %d below quorum %d", len(live), cfg.Quorum))
		degraded = true
	}

	n := 1
	if !degraded {
		n = len(live) * cfg.ShardsPerWorker
	}
	shards := c.shardDelta(d, n)
	c.mu.Lock()
	c.doc.Shards += int64(len(shards))
	c.mu.Unlock()

	base := &StreamCountRequest{
		StreamID: c.streamID,
		Seq:      seq,
		Side:     side,
		NumItems: d.NumItems(),
		Sets:     sets,
	}

	if degraded {
		for _, sh := range shards {
			counting.SumInto(counts, c.localCount(base, sh, "degraded").SetCounts)
		}
		return counts
	}

	for i, sh := range shards {
		sh.owner = live[i%len(live)]
	}
	results := make([]*StreamCountResponse, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		i, sh := i, sh
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = c.countShardRemote(base, sh)
		}()
	}
	wg.Wait()
	for i, sh := range shards {
		if results[i] == nil {
			results[i] = c.localCount(base, sh, "no live worker")
		}
		counting.SumInto(counts, results[i].SetCounts)
	}
	return counts
}

// shardDelta splits the delta into at most n contiguous content-addressed
// shards.
func (c *StreamCoordinator) shardDelta(d *dataset.Dataset, n int) []*shardState {
	if n < 1 {
		n = 1
	}
	parts := d.Partitions(n)
	shards := make([]*shardState, 0, len(parts))
	for _, part := range parts {
		var buf bytes.Buffer
		// bytes.Buffer writes cannot fail.
		_ = dataset.WriteBasket(&buf, part)
		shards = append(shards, &shardState{
			id:      ShardID(part.NumItems(), buf.Bytes()),
			baskets: buf.Bytes(),
			data:    part,
		})
	}
	return shards
}

// degrade switches this batch to local counting, recording the transition
// in the per-batch doc, metrics, trace, and log.
func (c *StreamCoordinator) degrade(seq int64, reason string) {
	c.mu.Lock()
	c.doc.Degraded = true
	c.doc.DegradedReason = reason
	c.mu.Unlock()
	if m := c.pool.met; m != nil {
		m.degraded.Inc()
	}
	c.pool.logf("cluster: stream %s seq %d: degrading batch to local delta counting: %s", c.streamID, seq, reason)
	obsv.EmitCluster(c.tracer, obsv.ClusterEvent{
		Event: "degraded", Pass: int(seq), Reason: reason, Live: len(c.pool.Live()),
	})
}

// countShardRemote drives one delta shard's count to completion against
// the cluster, failing over to untried live workers and declaring workers
// dead on RPC exhaustion. A nil return means no live worker could serve
// the shard; the caller counts it locally.
func (c *StreamCoordinator) countShardRemote(base *StreamCountRequest, sh *shardState) *StreamCountResponse {
	cfg := c.pool.Config()
	req := *base
	req.ShardID = sh.id
	tried := map[*workerRef]bool{}
	w := sh.owner
	for {
		if w == nil || !w.isAlive() || tried[w] {
			w = c.pickWorker(tried)
			if w == nil {
				return nil
			}
		}
		tried[w] = true
		if resp := c.tryWorker(&req, sh, w); resp != nil {
			return resp
		}
		if c.pool.markDead(w, fmt.Sprintf("stream %s seq %d: %d attempts failed", c.streamID, base.Seq, cfg.MaxAttempts)) {
			c.mu.Lock()
			c.doc.WorkerDeaths++
			c.mu.Unlock()
			obsv.EmitCluster(c.tracer, obsv.ClusterEvent{
				Event: "worker_dead", Pass: int(base.Seq), Worker: w.addr, Shard: sh.id[:12],
				Reason: "rpc attempts exhausted", Live: len(c.pool.Live()),
			})
		}
		c.mu.Lock()
		c.doc.Failovers++
		c.mu.Unlock()
		obsv.EmitCluster(c.tracer, obsv.ClusterEvent{
			Event: "reassign", Pass: int(base.Seq), Shard: sh.id[:12],
			Reason: "owner dead", Live: len(c.pool.Live()),
		})
		w = nil
	}
}

// tryWorker runs the per-worker attempt loop for one delta shard: ensure
// the shard is pushed, then count, backing off between attempts. A nil
// return means the budget is exhausted.
func (c *StreamCoordinator) tryWorker(req *StreamCountRequest, sh *shardState, w *workerRef) *StreamCountResponse {
	cfg := c.pool.Config()
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.doc.Retries++
			c.mu.Unlock()
			if m := c.pool.met; m != nil {
				m.rpcRetries.Inc()
			}
			c.backoff(attempt)
		}
		ctx, cancel := context.WithTimeout(context.Background(), cfg.RPCTimeout)
		if !w.hasShard(sh.id) {
			c.addRPCs(1)
			err := c.pool.loadShard(ctx, w, &LoadShardRequest{
				ShardID:  sh.id,
				NumItems: sh.data.NumItems(),
				Baskets:  string(sh.baskets),
			})
			if err != nil {
				cancel()
				continue
			}
		}
		c.addRPCs(1)
		resp, err := c.pool.streamCount(ctx, w, req)
		cancel()
		if err != nil {
			var re *remoteError
			if isRemoteReason(err, ReasonUnknownShard, &re) {
				// The worker restarted since the push: re-push and retry
				// without treating it as a network failure.
				w.setShard(sh.id, false)
			}
			continue
		}
		if len(resp.SetCounts) != len(req.Sets) {
			c.pool.logf("cluster: stream %s: worker %s returned unmergeable reply for shard %s: set vector %d, want %d",
				c.streamID, w.addr, sh.id[:12], len(resp.SetCounts), len(req.Sets))
			continue
		}
		if resp.Memoized {
			c.mu.Lock()
			c.doc.DuplicateReplies++
			c.mu.Unlock()
			if m := c.pool.met; m != nil {
				m.duplicateReplies.Inc()
			}
		}
		return resp
	}
	return nil
}

// localCount counts one delta shard on the calling goroutine — the
// fallback when no live worker can serve it, and the whole of a degraded
// batch. Same pure procedure as the workers, so the merged vector is
// unchanged.
func (c *StreamCoordinator) localCount(base *StreamCountRequest, sh *shardState, reason string) *StreamCountResponse {
	req := *base
	req.ShardID = sh.id
	c.mu.Lock()
	c.doc.LocalShardCounts++
	degraded := c.doc.Degraded
	c.mu.Unlock()
	if m := c.pool.met; m != nil {
		m.localCounts.Inc()
	}
	if !degraded {
		c.pool.logf("cluster: stream %s seq %d: counting delta shard %s locally (%s)", c.streamID, base.Seq, sh.id[:12], reason)
		obsv.EmitCluster(c.tracer, obsv.ClusterEvent{
			Event: "local_count", Pass: int(base.Seq), Shard: sh.id[:12],
			Reason: reason, Live: len(c.pool.Live()),
		})
	}
	// The nil tick never aborts the scan, so the error path is unreachable.
	resp, _ := countStreamShard(sh.scanner(), &req, nil)
	return resp
}

// addRPCs accounts issued RPC attempts in the per-batch doc.
func (c *StreamCoordinator) addRPCs(n int64) {
	c.mu.Lock()
	c.doc.RPCs += n
	c.mu.Unlock()
}

// pickWorker returns a live worker not yet tried, or nil.
func (c *StreamCoordinator) pickWorker(tried map[*workerRef]bool) *workerRef {
	for _, w := range c.pool.Live() {
		if !tried[w] {
			return w
		}
	}
	return nil
}

// backoff sleeps the capped, jittered exponential backoff for the given
// retry ordinal.
func (c *StreamCoordinator) backoff(attempt int) {
	cfg := c.pool.Config()
	d := cfg.BackoffBase << (attempt - 1)
	if d > cfg.BackoffCap || d <= 0 {
		d = cfg.BackoffCap
	}
	c.rngMu.Lock()
	jitter := 0.5 + c.rng.Float64() // ×[0.5, 1.5)
	c.rngMu.Unlock()
	time.Sleep(time.Duration(float64(d) * jitter))
}
