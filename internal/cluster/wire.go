// Package cluster distributes the per-pass support counting of a mining
// run across worker processes holding horizontal dataset shards — the
// count-distribution scheme of Agrawal & Shafer mapped onto the
// core.PassCounter seam. A Coordinator implements PassCounter by fanning
// each pass's candidate set out to the workers of a Pool and merging their
// count vectors at the pass barrier; counts are additive over disjoint
// horizontal partitions, so the merged result is byte-identical to a
// single sequential scan.
//
// The package is built for node loss. Workers are monitored by heartbeats
// with a liveness deadline; every RPC has a timeout and is retried with
// capped, jittered exponential backoff; requests are pass-stamped and
// workers memoize their replies, so a retried RPC whose first attempt
// actually completed is answered from the memo and detected as a duplicate
// rather than double-merged. Shards are content-addressed by the SHA-256
// of their declared item universe and basket encoding (see ShardID), so
// when a worker dies its shards are re-pushed
// to any surviving worker at the next pass barrier; a shard no live worker
// can serve is counted locally by the coordinator with the same counting
// procedure, and when the cluster drops below a configured quorum the
// coordinator degrades to local counting entirely and still finishes the
// job, recording the degradation instead of failing.
//
// Everything speaks HTTP/JSON over the standard library.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"pincer/internal/counting"
	"pincer/internal/itemset"
)

// ShardID content-addresses a shard: the SHA-256 of its declared item
// universe and its basket encoding. The universe is part of the identity
// because two shards with identical transactions but different declared
// universes produce count vectors of different widths — under a bytes-only
// address, a cached narrow-universe shard would poison every request from
// the wider universe (streams hit this constantly: small delta shards and
// re-mine window shards often share basket bytes).
func ShardID(numItems int, baskets []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "u%d\n", numItems)
	h.Write(baskets)
	return hex.EncodeToString(h.Sum(nil))
}

// Machine-readable reasons carried by wire-level error documents, in the
// style of the server's ValidationError reasons: clients (and the fuzz
// harness) branch on the reason without parsing prose.
const (
	// ReasonBadJSON rejects a body that is not well-formed JSON for the
	// expected message shape.
	ReasonBadJSON = "bad_json"
	// ReasonBadMessage rejects a well-formed message that violates a
	// semantic invariant (unknown kind, unsorted itemset, item out of
	// universe, wrong universe size, ...).
	ReasonBadMessage = "bad_message"
	// ReasonUnknownShard rejects a count request for a shard this worker
	// does not hold; the coordinator responds by re-pushing the shard.
	ReasonUnknownShard = "unknown_shard"
	// ReasonShardMismatch rejects a shard push whose bytes do not hash to
	// the claimed content address.
	ReasonShardMismatch = "shard_mismatch"
	// ReasonBadRoute rejects an unknown method/path pair.
	ReasonBadRoute = "bad_route"
	// ReasonInjected marks a fault-injection trip (test harness only).
	ReasonInjected = "injected"
	// ReasonDown marks a worker administratively killed by the fault
	// harness: every request fails until it is revived.
	ReasonDown = "down"
)

// Count request kinds, one per pass shape of the PassCounter seam.
const (
	KindItems      = "items"      // pass 1: per-item array
	KindPairs      = "pairs"      // pass 2: triangular pair matrix
	KindCandidates = "candidates" // pass ≥ 3: candidate engine
)

// maxWireUniverse bounds the item universe a message may declare, so a
// hostile size cannot force a giant allocation before validation.
const maxWireUniverse = 1 << 21

// WireError is a typed protocol rejection: the HTTP status to answer with
// and the machine-readable reason.
type WireError struct {
	Status int    // HTTP status code
	Reason string // Reason* constant
	Msg    string
}

func (e *WireError) Error() string { return fmt.Sprintf("cluster: %s: %s", e.Reason, e.Msg) }

func wireErrf(status int, reason, format string, args ...interface{}) *WireError {
	return &WireError{Status: status, Reason: reason, Msg: fmt.Sprintf(format, args...)}
}

// ErrorDoc is the JSON body of every non-2xx reply.
type ErrorDoc struct {
	Error  string `json:"error"`
	Reason string `json:"reason"`
}

// LoadShardRequest pushes one horizontal dataset shard to a worker. The
// shard is content-addressed: ShardID must be the ShardID hash of
// NumItems and Baskets, which any node can verify, so a shard can be
// re-pushed to any worker after its previous holder died.
type LoadShardRequest struct {
	// ShardID is the lowercase SHA-256 hex of Baskets.
	ShardID string `json:"shard_id"`
	// NumItems is the global item universe; the shard's transactions may
	// use only a prefix of it, but counting structures are sized to it so
	// per-shard count vectors align positionally.
	NumItems int `json:"num_items"`
	// Baskets is the shard in basket text format.
	Baskets string `json:"baskets"`
}

// LoadShardResponse acknowledges a shard push.
type LoadShardResponse struct {
	ShardID      string `json:"shard_id"`
	Transactions int    `json:"transactions"`
	// Cached reports the worker already held the shard (the push was a
	// content-address hit and the body was not re-parsed).
	Cached bool `json:"cached,omitempty"`
}

// CountRequest asks a worker to perform one pass's counting over one
// shard. The (JobID, Pass, Kind, ShardID) stamp identifies the logical
// request across retries: a correct coordinator never issues two different
// payloads under one stamp, and workers additionally key their reply memo
// by a digest of the full payload, so a duplicate delivery is answered
// idempotently.
type CountRequest struct {
	JobID string `json:"job_id"`
	Pass  int    `json:"pass"`
	Kind  string `json:"kind"`
	// ShardID names the shard to count over (must be loaded first).
	ShardID string `json:"shard_id"`
	// NumItems is the global item universe (must match the loaded shard).
	NumItems int `json:"num_items"`
	// Live is the live-item set for KindPairs.
	Live itemset.Itemset `json:"live,omitempty"`
	// Engine names the counting structure for KindCandidates ("" = hashtree).
	Engine string `json:"engine,omitempty"`
	// Candidates are the bottom-up candidates for KindCandidates.
	Candidates []itemset.Itemset `json:"candidates,omitempty"`
	// Elems are MFCS elements piggybacked on any kind of pass.
	Elems []itemset.Itemset `json:"elems,omitempty"`
}

// CountResponse carries one shard's count vectors, positionally parallel
// to the request's inputs. Exactly one of ItemCounts / PairCounts /
// CandCounts is populated according to the request kind (CandCounts may be
// empty when the candidate list was empty); ElemCounts is parallel to
// Elems.
type CountResponse struct {
	WorkerID     string `json:"worker_id"`
	ShardID      string `json:"shard_id"`
	Pass         int    `json:"pass"`
	Transactions int    `json:"transactions"`
	// Memoized reports the reply was served from the worker's idempotency
	// memo — the coordinator counts it as a detected duplicate delivery.
	Memoized   bool    `json:"memoized,omitempty"`
	ItemCounts []int64 `json:"item_counts,omitempty"`
	// PairCounts is the triangle's dense count vector (counting.Triangle
	// snapshot order over the request's Live set).
	PairCounts []int64 `json:"pair_counts,omitempty"`
	CandCounts []int64 `json:"cand_counts,omitempty"`
	ElemCounts []int64 `json:"elem_counts,omitempty"`
}

// WorkerStatus is the body of GET /cluster/v1/ping — the heartbeat reply,
// doubling as registration: it reports which shards the worker holds, so a
// restarted (empty) worker is re-seeded instead of assumed loaded.
type WorkerStatus struct {
	ID string `json:"id"`
	// Shards lists the content addresses of the shards held.
	Shards []string `json:"shards"`
	// CountsServed is the number of count RPCs answered since start.
	CountsServed int64 `json:"counts_served"`
}

// decodeStrict decodes one JSON document into v, rejecting unknown fields,
// trailing garbage, and bodies over limit bytes.
func decodeStrict(r io.Reader, limit int64, v interface{}) error {
	dec := json.NewDecoder(io.LimitReader(r, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return wireErrf(400, ReasonBadJSON, "decode: %v", err)
	}
	if dec.More() {
		return wireErrf(400, ReasonBadJSON, "trailing data after message")
	}
	return nil
}

// DecodeLoadShard decodes and validates a shard push (body capped at limit
// bytes). The content-address check against the basket bytes is the
// worker's job; this validates shape only.
func DecodeLoadShard(r io.Reader, limit int64) (*LoadShardRequest, error) {
	var req LoadShardRequest
	if err := decodeStrict(r, limit, &req); err != nil {
		return nil, err
	}
	if err := validShardID(req.ShardID); err != nil {
		return nil, err
	}
	if req.NumItems < 0 || req.NumItems > maxWireUniverse {
		return nil, wireErrf(400, ReasonBadMessage, "num_items %d outside [0, %d]", req.NumItems, maxWireUniverse)
	}
	return &req, nil
}

// DecodeCount decodes and validates a count request (body capped at limit
// bytes): known kind, plausible universe, and every itemset sorted,
// duplicate-free, and within the declared universe — the invariants the
// counting structures rely on.
func DecodeCount(r io.Reader, limit int64) (*CountRequest, error) {
	var req CountRequest
	if err := decodeStrict(r, limit, &req); err != nil {
		return nil, err
	}
	if err := validShardID(req.ShardID); err != nil {
		return nil, err
	}
	if req.Pass < 0 {
		return nil, wireErrf(400, ReasonBadMessage, "pass %d negative", req.Pass)
	}
	if req.NumItems <= 0 || req.NumItems > maxWireUniverse {
		return nil, wireErrf(400, ReasonBadMessage, "num_items %d outside [1, %d]", req.NumItems, maxWireUniverse)
	}
	switch req.Kind {
	case KindItems, KindPairs, KindCandidates:
	default:
		return nil, wireErrf(400, ReasonBadMessage, "unknown kind %q", req.Kind)
	}
	if req.Kind != KindPairs && len(req.Live) > 0 {
		return nil, wireErrf(400, ReasonBadMessage, "live applies to kind %q only", KindPairs)
	}
	if req.Kind != KindCandidates && (len(req.Candidates) > 0 || req.Engine != "") {
		return nil, wireErrf(400, ReasonBadMessage, "candidates/engine apply to kind %q only", KindCandidates)
	}
	if req.Engine != "" {
		if _, err := counting.ParseEngine(req.Engine); err != nil {
			return nil, wireErrf(400, ReasonBadMessage, "%v", err)
		}
	}
	if err := validSet(req.Live, req.NumItems, "live"); err != nil {
		return nil, err
	}
	for i, c := range req.Candidates {
		if len(c) == 0 {
			return nil, wireErrf(400, ReasonBadMessage, "candidates[%d] empty", i)
		}
		if err := validSet(c, req.NumItems, fmt.Sprintf("candidates[%d]", i)); err != nil {
			return nil, err
		}
	}
	for i, e := range req.Elems {
		if len(e) == 0 {
			return nil, wireErrf(400, ReasonBadMessage, "elems[%d] empty", i)
		}
		if err := validSet(e, req.NumItems, fmt.Sprintf("elems[%d]", i)); err != nil {
			return nil, err
		}
	}
	return &req, nil
}

// validShardID checks the lowercase SHA-256 hex shape.
func validShardID(id string) error {
	if len(id) != 64 {
		return wireErrf(400, ReasonBadMessage, "shard_id must be 64 hex chars, got %d", len(id))
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return wireErrf(400, ReasonBadMessage, "shard_id has non-hex byte %q", c)
		}
	}
	return nil
}

// validSet checks the itemset invariant: strictly increasing items within
// [0, universe).
func validSet(s itemset.Itemset, universe int, what string) error {
	for i, it := range s {
		if it < 0 || int(it) >= universe {
			return wireErrf(400, ReasonBadMessage, "%s: item %d outside universe [0, %d)", what, it, universe)
		}
		if i > 0 && s[i-1] >= it {
			return wireErrf(400, ReasonBadMessage, "%s: items not strictly increasing", what)
		}
	}
	return nil
}
