package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"pincer/internal/obsv"
)

// PoolConfig tunes the worker pool and every coordinator built over it.
// The zero value gets the documented defaults.
type PoolConfig struct {
	// HeartbeatInterval is the ping cadence. Default 500ms.
	HeartbeatInterval time.Duration
	// LivenessDeadline declares a worker dead when no ping has succeeded
	// for this long. Default 4 × HeartbeatInterval.
	LivenessDeadline time.Duration
	// RPCTimeout bounds each count/load RPC attempt. Default 10s.
	RPCTimeout time.Duration
	// MaxAttempts is the per-worker attempt budget of one shard count
	// before the worker is declared dead. Default 3.
	MaxAttempts int
	// BackoffBase and BackoffCap shape the capped, jittered exponential
	// backoff between attempts. Defaults 25ms and 1s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Quorum is the minimum live-worker count for distributed counting;
	// below it the coordinator degrades to local counting for the rest of
	// the job. Default 1.
	Quorum int
	// ShardsPerWorker is the sharding granularity: the dataset splits into
	// workers × ShardsPerWorker shards, so losing one worker redistributes
	// load in shard-sized pieces. Default 2.
	ShardsPerWorker int
	// Registry receives the pincer_cluster_* metrics (nil = no metrics).
	Registry *obsv.Registry
	// Logf, when set, receives cluster lifecycle lines.
	Logf func(format string, args ...interface{})
}

func (c *PoolConfig) fill() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.LivenessDeadline <= 0 {
		c.LivenessDeadline = 4 * c.HeartbeatInterval
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = time.Second
	}
	if c.Quorum <= 0 {
		c.Quorum = 1
	}
	if c.ShardsPerWorker <= 0 {
		c.ShardsPerWorker = 2
	}
}

// clusterMetrics is the pincer_cluster_* metric set, registered on the
// pool's registry (registration is idempotent, so pools may be rebuilt).
type clusterMetrics struct {
	workersLive      *obsv.Gauge
	workersKnown     *obsv.Gauge
	heartbeats       *obsv.Counter
	heartbeatMisses  *obsv.Counter
	workerDeaths     *obsv.Counter
	workerRejoins    *obsv.Counter
	rpcs             *obsv.Counter
	rpcErrors        *obsv.Counter
	rpcRetries       *obsv.Counter
	shardsPushed     *obsv.Counter
	reassignments    *obsv.Counter
	duplicateReplies *obsv.Counter
	localCounts      *obsv.Counter
	degraded         *obsv.Counter
}

func newClusterMetrics(reg *obsv.Registry) *clusterMetrics {
	if reg == nil {
		return nil
	}
	return &clusterMetrics{
		workersLive:      reg.Gauge("pincer_cluster_workers_live", "Workers currently passing heartbeats."),
		workersKnown:     reg.Gauge("pincer_cluster_workers_known", "Workers configured in the pool."),
		heartbeats:       reg.Counter("pincer_cluster_heartbeats_total", "Successful heartbeat pings."),
		heartbeatMisses:  reg.Counter("pincer_cluster_heartbeat_misses_total", "Failed heartbeat pings."),
		workerDeaths:     reg.Counter("pincer_cluster_worker_deaths_total", "Workers declared dead (liveness deadline or RPC exhaustion)."),
		workerRejoins:    reg.Counter("pincer_cluster_worker_rejoins_total", "Dead workers that resumed answering pings."),
		rpcs:             reg.Counter("pincer_cluster_rpcs_total", "Count/load RPC attempts issued."),
		rpcErrors:        reg.Counter("pincer_cluster_rpc_errors_total", "Count/load RPC attempts that failed."),
		rpcRetries:       reg.Counter("pincer_cluster_rpc_retries_total", "RPC attempts beyond the first for one shard count."),
		shardsPushed:     reg.Counter("pincer_cluster_shards_pushed_total", "Shard payloads pushed to workers."),
		reassignments:    reg.Counter("pincer_cluster_reassignments_total", "Shards reassigned away from dead workers."),
		duplicateReplies: reg.Counter("pincer_cluster_duplicate_replies_total", "Memoized (duplicate-delivery) count replies detected."),
		localCounts:      reg.Counter("pincer_cluster_local_counts_total", "Shard passes counted locally by a coordinator."),
		degraded:         reg.Counter("pincer_cluster_degraded_total", "Jobs degraded to fully local counting."),
	}
}

// workerRef is the pool's view of one worker process.
type workerRef struct {
	addr string // base URL, e.g. http://127.0.0.1:9001

	mu       sync.Mutex
	id       string
	alive    bool
	everSeen bool
	lastBeat time.Time
	// shards is the set of shard content addresses this worker is believed
	// to hold — seeded from ping replies, so a restarted worker's empty
	// store is discovered rather than assumed.
	shards map[string]bool
}

// Addr returns the worker's base URL.
func (w *workerRef) Addr() string { return w.addr }

func (w *workerRef) isAlive() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.alive
}

func (w *workerRef) hasShard(id string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.shards[id]
}

func (w *workerRef) setShard(id string, held bool) {
	w.mu.Lock()
	if held {
		if w.shards == nil {
			w.shards = map[string]bool{}
		}
		w.shards[id] = true
	} else {
		delete(w.shards, id)
	}
	w.mu.Unlock()
}

// Pool manages the worker set: registration, heartbeats with liveness
// deadlines, and the HTTP client every coordinator RPC goes through. One
// pool serves all jobs of a coordinator process.
type Pool struct {
	cfg    PoolConfig
	met    *clusterMetrics
	client *http.Client

	mu      sync.Mutex
	workers []*workerRef
	stop    chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

// NewPool builds a pool over the given worker base URLs (scheme required).
func NewPool(addrs []string, cfg PoolConfig) (*Pool, error) {
	cfg.fill()
	if len(addrs) == 0 {
		return nil, errors.New("cluster: pool needs at least one worker address")
	}
	p := &Pool{
		cfg:    cfg,
		met:    newClusterMetrics(cfg.Registry),
		client: &http.Client{Timeout: cfg.RPCTimeout},
		stop:   make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, a := range addrs {
		a = strings.TrimRight(strings.TrimSpace(a), "/")
		if a == "" {
			continue
		}
		u, err := url.Parse(a)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: worker address %q is not a base URL", a)
		}
		if seen[a] {
			continue
		}
		seen[a] = true
		p.workers = append(p.workers, &workerRef{addr: a})
	}
	if len(p.workers) == 0 {
		return nil, errors.New("cluster: pool needs at least one worker address")
	}
	if p.met != nil {
		p.met.workersKnown.Set(int64(len(p.workers)))
	}
	return p, nil
}

// Config returns the pool's effective (default-filled) configuration.
func (p *Pool) Config() PoolConfig { return p.cfg }

func (p *Pool) logf(format string, args ...interface{}) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// Start runs one synchronous heartbeat round — so callers see the initial
// live set — and then the background heartbeat loop.
func (p *Pool) Start() {
	p.heartbeatRound()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.cfg.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.heartbeatRound()
			}
		}
	}()
}

// Close stops the heartbeat loop.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.stopped {
		p.stopped = true
		close(p.stop)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Workers returns every configured worker.
func (p *Pool) Workers() []*workerRef {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*workerRef(nil), p.workers...)
}

// Live returns the workers currently passing heartbeats.
func (p *Pool) Live() []*workerRef {
	p.mu.Lock()
	defer p.mu.Unlock()
	var live []*workerRef
	for _, w := range p.workers {
		if w.isAlive() {
			live = append(live, w)
		}
	}
	return live
}

// heartbeatRound pings every worker concurrently and applies the liveness
// deadline.
func (p *Pool) heartbeatRound() {
	workers := p.Workers()
	var wg sync.WaitGroup
	for _, w := range workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A ping slower than the liveness deadline is as good as dead,
			// so that is the attempt timeout (the interval itself would be
			// too tight on a loaded machine).
			ctx, cancel := context.WithTimeout(context.Background(), p.cfg.LivenessDeadline)
			defer cancel()
			st, err := p.Ping(ctx, w)
			now := time.Now()
			w.mu.Lock()
			if err != nil {
				if p.met != nil {
					p.met.heartbeatMisses.Inc()
				}
				dead := w.alive && now.Sub(w.lastBeat) > p.cfg.LivenessDeadline
				if dead {
					w.alive = false
				}
				w.mu.Unlock()
				if dead {
					if p.met != nil {
						p.met.workerDeaths.Inc()
					}
					p.logf("cluster: worker %s missed its liveness deadline; declared dead", w.addr)
				}
				p.updateLiveGauge()
				return
			}
			if p.met != nil {
				p.met.heartbeats.Inc()
			}
			rejoin := w.everSeen && !w.alive
			w.alive = true
			w.everSeen = true
			w.lastBeat = now
			w.id = st.ID
			// Trust the worker's own inventory: a restarted worker reports
			// an empty (or partial) store and gets re-pushed on demand.
			w.shards = map[string]bool{}
			for _, s := range st.Shards {
				w.shards[s] = true
			}
			w.mu.Unlock()
			if rejoin {
				if p.met != nil {
					p.met.workerRejoins.Inc()
				}
				p.logf("cluster: worker %s rejoined", w.addr)
			}
			p.updateLiveGauge()
		}()
	}
	wg.Wait()
}

func (p *Pool) updateLiveGauge() {
	if p.met == nil {
		return
	}
	var n int64
	for _, w := range p.Workers() {
		if w.isAlive() {
			n++
		}
	}
	p.met.workersLive.Set(n)
}

// markDead records an RPC-exhaustion death (the coordinator gave up on the
// worker before the heartbeat loop noticed). It reports whether this call
// performed the alive→dead transition, so callers do not double-count a
// worker two shard fan-outs give up on concurrently.
func (p *Pool) markDead(w *workerRef, reason string) bool {
	w.mu.Lock()
	was := w.alive
	w.alive = false
	w.mu.Unlock()
	if was {
		if p.met != nil {
			p.met.workerDeaths.Inc()
		}
		p.logf("cluster: worker %s declared dead (%s)", w.addr, reason)
		p.updateLiveGauge()
	}
	return was
}

// remoteError is a non-2xx wire reply.
type remoteError struct {
	Status int
	Reason string
	Msg    string
}

func (e *remoteError) Error() string {
	return fmt.Sprintf("cluster: remote %d (%s): %s", e.Status, e.Reason, e.Msg)
}

// postJSON performs one JSON request/response RPC attempt.
func (p *Pool) postJSON(ctx context.Context, w *workerRef, path string, body, out interface{}) error {
	if p.met != nil {
		p.met.rpcs.Inc()
	}
	err := p.doJSON(ctx, http.MethodPost, w.addr+path, body, out)
	if err != nil && p.met != nil {
		p.met.rpcErrors.Inc()
	}
	return err
}

func (p *Pool) doJSON(ctx context.Context, method, url string, body, out interface{}) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var doc ErrorDoc
		if jerr := json.Unmarshal(data, &doc); jerr == nil && doc.Reason != "" {
			return &remoteError{Status: resp.StatusCode, Reason: doc.Reason, Msg: doc.Error}
		}
		return &remoteError{Status: resp.StatusCode, Reason: "http", Msg: http.StatusText(resp.StatusCode)}
	}
	return json.Unmarshal(data, out)
}

// Ping performs one heartbeat RPC.
func (p *Pool) Ping(ctx context.Context, w *workerRef) (*WorkerStatus, error) {
	var st WorkerStatus
	if err := p.doJSON(ctx, http.MethodGet, w.addr+"/cluster/v1/ping", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// loadShard pushes one shard to a worker.
func (p *Pool) loadShard(ctx context.Context, w *workerRef, req *LoadShardRequest) error {
	var resp LoadShardResponse
	if err := p.postJSON(ctx, w, "/cluster/v1/shards", req, &resp); err != nil {
		return err
	}
	if p.met != nil && !resp.Cached {
		p.met.shardsPushed.Inc()
	}
	w.setShard(req.ShardID, true)
	return nil
}

// count performs one count RPC attempt.
func (p *Pool) count(ctx context.Context, w *workerRef, req *CountRequest) (*CountResponse, error) {
	var resp CountResponse
	if err := p.postJSON(ctx, w, "/cluster/v1/count", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
