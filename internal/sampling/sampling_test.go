package sampling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pincer/internal/apriori"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/quest"
)

func TestSamplingSmall(t *testing.T) {
	d := dataset.New([]dataset.Transaction{
		itemset.New(1, 2, 3),
		itemset.New(1, 2, 3),
		itemset.New(1, 2),
		itemset.New(3, 4),
		itemset.New(3, 4),
	})
	opt := DefaultOptions()
	opt.SampleSize = 5
	opt.Seed = 1
	res := Mine(d, 0.4, opt)
	ares := must(apriori.Mine(dataset.NewScanner(d), 0.4, apriori.DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
		t.Fatalf("MFS: %v (got %v want %v)", err, res.MFS, ares.MFS)
	}
	res.Frequent.Each(func(x itemset.Itemset, c int64) {
		if c != d.Support(x) {
			t.Errorf("support(%v) = %d, want %d", x, c, d.Support(x))
		}
	})
}

func TestSamplingEmptyDatabase(t *testing.T) {
	res := Mine(dataset.Empty(4), 0.5, DefaultOptions())
	if len(res.MFS) != 0 || res.Stats.Passes != 0 {
		t.Fatalf("MFS=%v passes=%d", res.MFS, res.Stats.Passes)
	}
}

func TestSamplingFastPathUsesOnePass(t *testing.T) {
	// With the sample being the whole database the border never misses.
	d := quest.Generate(quest.Params{
		NumTransactions: 400, AvgTxLen: 6, AvgPatternLen: 3,
		NumPatterns: 20, NumItems: 40, Seed: 5,
	})
	opt := DefaultOptions()
	opt.SampleSize = d.Len() * 2 // oversample: near-exact estimate
	opt.Seed = 2
	res := Mine(d, 0.05, opt)
	ares := must(apriori.Mine(dataset.NewScanner(d), 0.05, apriori.DefaultOptions()))
	if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
		t.Fatalf("MFS: %v", err)
	}
	if res.BorderMisses == 0 && res.Stats.Passes != 1 {
		t.Errorf("fast path took %d passes", res.Stats.Passes)
	}
}

func TestSamplingFailurePathStillExact(t *testing.T) {
	// A pathologically tiny sample forces border misses; the expansion loop
	// must still converge to the exact result.
	d := quest.Generate(quest.Params{
		NumTransactions: 600, AvgTxLen: 8, AvgPatternLen: 4,
		NumPatterns: 25, NumItems: 50, Seed: 9,
	})
	sawMiss := false
	for seed := int64(0); seed < 8; seed++ {
		opt := DefaultOptions()
		opt.SampleSize = 12
		opt.LowerFactor = 1.0 // no lowering: misses likely
		opt.Seed = seed
		res := Mine(d, 0.05, opt)
		ares := must(apriori.Mine(dataset.NewScanner(d), 0.05, apriori.DefaultOptions()))
		if err := mfi.VerifyAgainst(res.MFS, ares.MFS); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.BorderMisses > 0 {
			sawMiss = true
			if res.Expansions == 0 {
				t.Errorf("seed %d: misses without expansion", seed)
			}
		}
	}
	if !sawMiss {
		t.Log("no border miss observed across seeds (unusual but not wrong)")
	}
}

func TestQuickSamplingMatchesApriori(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		universe := 4 + r.Intn(6)
		numTx := 10 + r.Intn(40)
		d := dataset.Empty(universe)
		for i := 0; i < numTx; i++ {
			n := 1 + r.Intn(universe)
			items := make([]itemset.Item, n)
			for j := range items {
				items[j] = itemset.Item(r.Intn(universe))
			}
			d.Append(itemset.New(items...))
		}
		sup := 0.1 + r.Float64()*0.3
		opt := DefaultOptions()
		opt.SampleSize = 1 + r.Intn(numTx)
		opt.Seed = seed
		res := Mine(d, sup, opt)
		ares := must(apriori.Mine(dataset.NewScanner(d), sup, apriori.DefaultOptions()))
		return mfi.VerifyAgainst(res.MFS, ares.MFS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// must unwraps the (result, error) mining returns; in-memory test scans
// cannot fail.
func must[R any](res R, err error) R {
	if err != nil {
		panic(err)
	}
	return res
}
