// Package sampling implements Toivonen's Sampling algorithm (VLDB 1996),
// a related-work baseline the paper discusses (§5). A random sample of the
// database is mined in memory at a lowered support threshold; the sample's
// frequent set plus its negative border is then counted against the full
// database. If nothing in the negative border turns out globally frequent,
// one full pass sufficed; otherwise the candidate collection is expanded
// border-by-border with additional passes until it closes — the rare
// "failure" path that trades an extra scan for exactness.
//
// The paper's critique stands here too: the sample is mined bottom-up, so a
// long maximal frequent itemset still forces the enumeration of its 2^l
// subsets, just in memory instead of on disk.
package sampling

import (
	"math/rand"
	"time"

	"pincer/internal/apriori"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// Options configures the Sampling run.
type Options struct {
	// SampleSize is the number of transactions drawn (with replacement)
	// for the in-memory mining step (default: |D|/4, at least 1).
	SampleSize int
	// LowerFactor multiplies the support threshold used on the sample;
	// Toivonen lowers it to reduce the miss probability (default 0.8).
	LowerFactor float64
	// Seed drives the sampling PRNG.
	Seed int64
	// Engine selects the counting engine for the full-database passes.
	Engine counting.Engine
	// KeepFrequent retains the global frequent set in the result.
	KeepFrequent bool
	// MaxExpansions bounds the failure-path iterations (0 = until closure,
	// which is what guarantees an exact result; set a bound only to trade
	// exactness for a hard pass limit).
	MaxExpansions int
}

// DefaultOptions returns Toivonen's standard configuration.
func DefaultOptions() Options {
	return Options{LowerFactor: 0.8, Engine: counting.EngineHashTree, KeepFrequent: true}
}

// Result extends the shared result with sampling diagnostics.
type Result struct {
	mfi.Result
	// BorderMisses counts negative-border itemsets that turned out globally
	// frequent — zero means the single-pass fast path succeeded.
	BorderMisses int
	// Expansions counts failure-path candidate expansions performed.
	Expansions int
}

// Mine runs the Sampling algorithm over an in-memory dataset.
func Mine(d *dataset.Dataset, minSupport float64, opt Options) *Result {
	start := time.Now()
	if opt.SampleSize <= 0 {
		opt.SampleSize = d.Len() / 4
		if opt.SampleSize < 1 {
			opt.SampleSize = 1
		}
	}
	if opt.LowerFactor <= 0 || opt.LowerFactor > 1 {
		opt.LowerFactor = 0.8
	}
	minCount := d.MinCount(minSupport)
	res := &Result{Result: mfi.Result{
		MinCount:        minCount,
		NumTransactions: d.Len(),
		Frequent:        itemset.NewSet(0),
	}}
	res.Stats.Algorithm = "sampling"
	defer func() { res.Stats.Duration = time.Since(start) }()
	if d.Len() == 0 {
		return res
	}

	// Draw the sample (with replacement) and mine it in memory.
	rng := rand.New(rand.NewSource(opt.Seed))
	sample := dataset.Empty(d.NumItems())
	for i := 0; i < opt.SampleSize; i++ {
		sample.Append(d.Transaction(rng.Intn(d.Len())))
	}
	aopt := apriori.DefaultOptions()
	aopt.Engine = opt.Engine
	sampleRes, err := apriori.Mine(dataset.NewScanner(sample), minSupport*opt.LowerFactor, aopt)
	if err != nil {
		// In-memory samples cannot fail a scan.
		panic(err)
	}

	universe := d.PresentItems()
	sampleFrequent := sampleRes.Frequent.Sorted()
	border := mfi.NegativeBorder(universe, sampleFrequent)

	counted := itemset.NewSet(0) // every itemset counted against the full DB
	countAll := func(sets []itemset.Itemset) {
		if len(sets) == 0 {
			return
		}
		ctr := counting.NewCounter(opt.Engine, sets)
		for _, tx := range d.Transactions() {
			ctr.Add(tx)
		}
		frequent := 0
		for i, c := range ctr.Counts() {
			counted.AddWithCount(sets[i], c)
			if c >= minCount {
				frequent++
			}
		}
		res.Stats.AddPass(mfi.PassStats{Candidates: len(sets), Frequent: frequent})
	}

	first := append(append([]itemset.Itemset(nil), sampleFrequent...), border...)
	countAll(dedupe(first))

	// Fast-path check: any border itemset globally frequent means the
	// sample missed part of the frequent set.
	for _, b := range border {
		if c, ok := counted.Count(b); ok && c >= minCount {
			res.BorderMisses++
		}
	}

	// Failure path: expand by the negative border of the global frequent
	// collection until it closes.
	for res.BorderMisses > 0 && (opt.MaxExpansions == 0 || res.Expansions < opt.MaxExpansions) {
		var globallyFrequent []itemset.Itemset
		counted.Each(func(x itemset.Itemset, c int64) {
			if c >= minCount {
				globallyFrequent = append(globallyFrequent, x)
			}
		})
		nb := mfi.NegativeBorder(universe, globallyFrequent)
		var fresh []itemset.Itemset
		for _, x := range nb {
			if !counted.Contains(x) {
				fresh = append(fresh, x)
			}
		}
		if len(fresh) == 0 {
			break
		}
		res.Expansions++
		countAll(fresh)
	}

	// Assemble the result from everything counted.
	var all []itemset.Itemset
	counted.Each(func(x itemset.Itemset, c int64) {
		if c >= minCount {
			all = append(all, x)
			if opt.KeepFrequent {
				res.Frequent.AddWithCount(x, c)
			}
		}
	})
	res.MFS = itemset.MaximalOnly(all)
	res.MFSSupports = make([]int64, len(res.MFS))
	for i, m := range res.MFS {
		c, _ := counted.Count(m)
		res.MFSSupports[i] = c
	}
	if !opt.KeepFrequent {
		res.Frequent = nil
	}
	return res
}

func dedupe(sets []itemset.Itemset) []itemset.Itemset {
	seen := itemset.NewSet(len(sets))
	out := sets[:0]
	for _, s := range sets {
		if !seen.Contains(s) {
			seen.Add(s)
			out = append(out, s)
		}
	}
	return out
}
