package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

func sampleState() *State {
	st := &State{
		Version:         Version,
		Algorithm:       "pincer",
		MinCount:        42,
		NumTransactions: 1000,
		NumItems:        30,
		Stage:           "levelwise",
		K:               3,
		Tail:            1,
		Lk:              []itemset.Itemset{{0, 1}, {0, 2}},
		RemovedAny:      true,
		MFS:             []itemset.Itemset{{5, 6, 7}},
		AllFrequent:     []itemset.Itemset{{0, 1}, {0, 2}, {5, 6, 7}},
		Cache:           map[string]int64{itemset.Itemset{0, 1}.Key(): 99},
		ItemCounts:      []int64{10, 20, 30},
		Pairs:           &TriangleState{Universe: 30, Live: []itemset.Item{0, 1, 2}, Counts: []int64{1, 2, 3}},
		MFCS:            []MFCSElement{{Set: itemset.Itemset{5, 6, 7}, State: 2, Count: 50, Harvested: true}},
	}
	st.Stats.Algorithm = "pincer"
	st.Stats.AddPass(mfi.PassStats{Candidates: 30, Frequent: 3})
	return st
}

func TestFileCheckpointerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mine.ckpt")
	cp := NewFileCheckpointer(path)

	// No checkpoint yet: Load is (nil, nil), Clear is a no-op.
	if st, err := cp.Load(); st != nil || err != nil {
		t.Fatalf("Load on missing file = (%v, %v), want (nil, nil)", st, err)
	}
	if err := cp.Clear(); err != nil {
		t.Fatalf("Clear on missing file: %v", err)
	}

	want := sampleState()
	if err := cp.Save(want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := cp.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}

	if err := cp.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	if st, err := cp.Load(); st != nil || err != nil {
		t.Fatalf("Load after Clear = (%v, %v), want (nil, nil)", st, err)
	}
}

// TestTruncatedCheckpoint is the regression test for the atomic-write
// protocol: a checkpoint file cut short mid-write must surface as a
// *CorruptError — never a zero state or a silent nil.
func TestTruncatedCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mine.ckpt")
	cp := NewFileCheckpointer(path)
	if err := cp.Save(sampleState()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = cp.Load()
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Load of truncated checkpoint = %v, want *CorruptError", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mine.ckpt")
	cp := NewFileCheckpointer(path)
	st := sampleState()
	st.Version = Version + 1
	if err := cp.Save(st); err != nil {
		t.Fatal(err)
	}
	_, err := cp.Load()
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Load of future-version checkpoint = %v, want *CorruptError", err)
	}
}

// TestSaveLeavesNoTempFiles checks that both the success path and the
// steady-state overwrite leave only the checkpoint itself in the directory.
func TestSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	cp := NewFileCheckpointer(filepath.Join(dir, "mine.ckpt"))
	for i := 0; i < 3; i++ {
		if err := cp.Save(sampleState()); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "mine.ckpt" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory after saves = %v, want just mine.ckpt", names)
	}
}

func TestMemCheckpointerIsolation(t *testing.T) {
	cp := &MemCheckpointer{}
	st := sampleState()
	if err := cp.Save(st); err != nil {
		t.Fatal(err)
	}
	// Mutate the live state after saving; the stored copy must not change.
	st.Lk[0][0] = 99
	st.Cache["mutated"] = 1
	got, err := cp.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Lk[0][0] == 99 {
		t.Fatal("stored state aliases the live Lk slice")
	}
	if _, ok := got.Cache["mutated"]; ok {
		t.Fatal("stored state aliases the live cache map")
	}
	if cp.Saves != 1 {
		t.Fatalf("Saves = %d, want 1", cp.Saves)
	}
	if err := cp.Clear(); err != nil {
		t.Fatal(err)
	}
	if st, err := cp.Load(); st != nil || err != nil {
		t.Fatalf("Load after Clear = (%v, %v), want (nil, nil)", st, err)
	}
}
