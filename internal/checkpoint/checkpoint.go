// Package checkpoint persists the pass-barrier state of a mining run so an
// interrupted mine can resume instead of restarting. The state is a plain
// snapshot of everything the level-wise loop carries across a pass barrier
// — pass statistics, the frequent sets found so far, the current candidate
// level, and the MFCS with element states and counts — so a resumed run
// replays the exact remaining passes of the uninterrupted one.
//
// Files are written with the temp-file + rename protocol: the encoded state
// goes to a sibling ".tmp" file which is synced and then renamed over the
// target, so a crash mid-write never leaves a truncated checkpoint behind —
// the old checkpoint (or none) survives intact. A checkpoint that is
// nevertheless unreadable decodes to a *CorruptError rather than being
// silently ignored.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// Version is the checkpoint format version written by this build. Load
// rejects other versions instead of guessing at field meanings.
const Version = 1

// MFCSElement is one element of the persisted MFCS frontier: its itemset,
// classification state, last support count, and whether it was already
// harvested into the MFS.
type MFCSElement struct {
	Set       itemset.Itemset
	State     uint8
	Count     int64
	Harvested bool
}

// TriangleState is the persisted pass-2 pair-count triangle. The support
// resolver answers 2-itemset lookups from it, so it must survive a restart
// for MFCS classification to replay identically.
type TriangleState struct {
	Universe int
	Live     []itemset.Item
	Counts   []int64
}

// State is everything a miner saves at a pass barrier. It is deliberately
// a dumb data bag — no behaviour — so it can be gob-encoded and inspected.
type State struct {
	Version int

	// Identity of the run; MineResume validates these against its own
	// arguments so a checkpoint is never applied to a different database
	// or support threshold.
	Algorithm       string
	MinCount        int64
	NumTransactions int64
	NumItems        int

	// Stage names the phase to re-enter ("pass2", "levelwise", "tail") and
	// K/Tail position the level-wise and tail loops inside it.
	Stage string
	K     int
	Tail  int

	// Level-wise loop state.
	Lk         []itemset.Itemset // current frequent level L_k
	RemovedAny bool              // some of L_k was filtered by the MFS
	Abandoned  bool              // adaptive mode dropped the MFCS

	// Discovered-so-far state.
	MFS         []itemset.Itemset // maximal frequent itemsets harvested so far
	AllFrequent []itemset.Itemset // every frequent itemset counted (k ≥ 3)
	Cache       map[string]int64  // support cache keyed by Itemset.Key
	ItemCounts  []int64           // pass-1 singleton counts
	Pairs       *TriangleState    // pass-2 pair counts (nil before pass 2)

	// Top-down frontier.
	MFCS []MFCSElement

	Stats mfi.Stats
}

// Checkpointer persists and recalls mining state at pass barriers. Save
// replaces any previous checkpoint atomically; Load returns (nil, nil)
// when no checkpoint exists; Clear removes the checkpoint (called after a
// successful run so a later resume starts fresh).
type Checkpointer interface {
	Save(st *State) error
	Load() (*State, error)
	Clear() error
}

// CorruptError reports a checkpoint that exists but cannot be decoded —
// e.g. truncated by a crash of a writer not using the rename protocol, or
// written by an incompatible build.
type CorruptError struct {
	Path string
	Err  error
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("checkpoint %s is corrupt: %v", e.Path, e.Err)
}

// Unwrap exposes the decoding error.
func (e *CorruptError) Unwrap() error { return e.Err }

// MismatchError reports a checkpoint whose identity does not match the
// resume call — a different database, support threshold, or algorithm.
type MismatchError struct {
	Field string
	Want  string
	Got   string
}

// Error implements error.
func (e *MismatchError) Error() string {
	return fmt.Sprintf("checkpoint does not match this run: %s is %s, checkpoint has %s", e.Field, e.Want, e.Got)
}

// FileCheckpointer stores the state gob-encoded in a single file, written
// via temp-file + rename so readers never observe a partial write.
type FileCheckpointer struct {
	path string
}

// NewFileCheckpointer builds a checkpointer backed by path. The file is
// created on the first Save.
func NewFileCheckpointer(path string) *FileCheckpointer {
	return &FileCheckpointer{path: path}
}

// Path returns the checkpoint file path.
func (f *FileCheckpointer) Path() string { return f.path }

// Save atomically replaces the checkpoint file with the encoded state.
func (f *FileCheckpointer) Save(st *State) error {
	dir := filepath.Dir(f.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(f.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := gob.NewEncoder(tmp).Encode(st); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), f.path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Load decodes the checkpoint file; (nil, nil) when none exists.
func (f *FileCheckpointer) Load() (*State, error) {
	file, err := os.Open(f.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer file.Close()
	var st State
	if err := gob.NewDecoder(file).Decode(&st); err != nil {
		return nil, &CorruptError{Path: f.path, Err: err}
	}
	if st.Version != Version {
		return nil, &CorruptError{Path: f.path, Err: fmt.Errorf("format version %d, this build reads %d", st.Version, Version)}
	}
	return &st, nil
}

// Clear removes the checkpoint file; missing is not an error.
func (f *FileCheckpointer) Clear() error {
	err := os.Remove(f.path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// MemCheckpointer keeps the checkpoint in memory, gob-round-tripped on
// every Save/Load so the stored state shares no slices or maps with the
// live miner — the same isolation a file gives, without the disk. Used by
// the fault-injection tests.
type MemCheckpointer struct {
	data  []byte
	Saves int
}

// Save encodes the state into the in-memory buffer.
func (m *MemCheckpointer) Save(st *State) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return err
	}
	m.data = buf.Bytes()
	m.Saves++
	return nil
}

// Load decodes the buffered state; (nil, nil) when empty.
func (m *MemCheckpointer) Load() (*State, error) {
	if m.data == nil {
		return nil, nil
	}
	var st State
	if err := gob.NewDecoder(bytes.NewReader(m.data)).Decode(&st); err != nil {
		return nil, &CorruptError{Path: "(memory)", Err: err}
	}
	return &st, nil
}

// Clear drops the buffered state.
func (m *MemCheckpointer) Clear() error {
	m.data = nil
	return nil
}
