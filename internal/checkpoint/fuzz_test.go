package checkpoint

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pincer/internal/itemset"
)

// FuzzCheckpointDecode feeds arbitrary bytes to both checkpoint decoders.
// The contract under fuzz: decoding never panics, and every unreadable
// checkpoint surfaces as a typed *CorruptError — never a silent nil state
// and never a bare gob error the resume path couldn't classify.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed with a real checkpoint (every field populated), truncations of
	// it, a wrong-version encoding, and plain garbage.
	st := &State{
		Version:         Version,
		Algorithm:       "pincer",
		MinCount:        3,
		NumTransactions: 100,
		NumItems:        8,
		Stage:           "levelwise",
		K:               3,
		Lk:              []itemset.Itemset{itemset.New(0, 1, 2)},
		MFS:             []itemset.Itemset{itemset.New(3, 4)},
		AllFrequent:     []itemset.Itemset{itemset.New(0, 1)},
		Cache:           map[string]int64{itemset.New(0, 1).Key(): 7},
		ItemCounts:      []int64{9, 8, 7, 6, 5, 4, 3, 2},
		Pairs:           &TriangleState{Universe: 8, Live: []itemset.Item{0, 1}, Counts: []int64{5}},
		MFCS:            []MFCSElement{{Set: itemset.New(0, 1, 2, 3), State: 1, Count: 4}},
	}
	var valid bytes.Buffer
	if err := gob.NewEncoder(&valid).Encode(st); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add(valid.Bytes()[:1])
	badVersion := *st
	badVersion.Version = Version + 1
	var wrongVer bytes.Buffer
	if err := gob.NewEncoder(&wrongVer).Encode(&badVersion); err != nil {
		f.Fatal(err)
	}
	f.Add(wrongVer.Bytes())
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// In-memory decoder.
		m := &MemCheckpointer{data: data}
		if _, err := m.Load(); err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("MemCheckpointer.Load: error is %T (%v), want *CorruptError", err, err)
			}
		}

		// File decoder over the same bytes, which additionally enforces the
		// format version.
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := NewFileCheckpointer(path).Load()
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("FileCheckpointer.Load: error is %T (%v), want *CorruptError", err, err)
			}
			return
		}
		if got == nil {
			t.Fatal("FileCheckpointer.Load: nil state and nil error for an existing file")
		}
		if got.Version != Version {
			t.Fatalf("accepted checkpoint with version %d, this build reads %d", got.Version, Version)
		}
	})
}
