// Package rules implements the second stage of association-rule mining
// (paper §2.1): generating the rules X → Y with support and confidence above
// user thresholds from the discovered frequent itemsets.
//
// Two generators are provided. FromFrequentSet is the classic ap-genrules
// of Agrawal & Srikant, which needs the complete frequent set with supports
// — what Apriori produces. FromMFS implements the paper's observation that
// the maximum frequent set suffices: the subsets of the maximal frequent
// itemsets are generated on demand and their supports counted with one extra
// database pass, "which is quite straightforward" (§2.1).
package rules

import (
	"fmt"
	"math"
	"sort"

	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// Rule is an association rule Antecedent → Consequent.
type Rule struct {
	Antecedent itemset.Itemset
	Consequent itemset.Itemset
	// Support is the fractional support of Antecedent ∪ Consequent.
	Support float64
	// Confidence is support(A ∪ C) / support(A).
	Confidence float64
	// Lift is confidence / support(C): > 1 indicates positive correlation.
	Lift float64
	// AntecedentSupport and ConsequentSupport are the marginal supports,
	// retained so the strong-rule measures below need no recounting.
	AntecedentSupport float64
	ConsequentSupport float64
}

// Leverage is Piatetsky-Shapiro's rule-interest measure (the paper's §1
// "strong rules" reference [14]): support(A∪C) − support(A)·support(C).
// Zero means independence; the PS framework calls a rule strong when the
// leverage is significantly positive.
func (r Rule) Leverage() float64 {
	return r.Support - r.AntecedentSupport*r.ConsequentSupport
}

// Conviction is (1 − support(C)) / (1 − confidence): the ratio by which the
// rule would be wrong more often if A and C were independent. It diverges
// to +Inf for exact rules (confidence 1).
func (r Rule) Conviction() float64 {
	denom := 1 - r.Confidence
	if denom <= 0 {
		return math.Inf(1)
	}
	return (1 - r.ConsequentSupport) / denom
}

// ChiSquare computes the χ² statistic of the 2×2 contingency table of A
// and C over n transactions. Values above 3.84 reject independence at the
// 5% level (one degree of freedom).
func (r Rule) ChiSquare(n int) float64 {
	fN := float64(n)
	observed := [2][2]float64{
		{r.Support * fN, (r.AntecedentSupport - r.Support) * fN},
		{(r.ConsequentSupport - r.Support) * fN,
			(1 - r.AntecedentSupport - r.ConsequentSupport + r.Support) * fN},
	}
	pa, pc := r.AntecedentSupport, r.ConsequentSupport
	expected := [2][2]float64{
		{pa * pc * fN, pa * (1 - pc) * fN},
		{(1 - pa) * pc * fN, (1 - pa) * (1 - pc) * fN},
	}
	chi := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if expected[i][j] <= 0 {
				continue
			}
			d := observed[i][j] - expected[i][j]
			chi += d * d / expected[i][j]
		}
	}
	return chi
}

// IsStrong applies the Piatetsky-Shapiro strength test at the 5% χ² level
// with positive leverage.
func (r Rule) IsStrong(n int) bool {
	return r.Leverage() > 0 && r.ChiSquare(n) >= 3.841
}

// String renders "{1,2} => {3} (sup 0.40, conf 0.80, lift 1.60)".
func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup %.3f, conf %.3f, lift %.2f)",
		r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift)
}

// Params are the rule-quality thresholds.
type Params struct {
	MinConfidence float64
	// MaxConsequent bounds the consequent length (0 = unlimited);
	// ap-genrules grows consequents level-wise, so this caps work on long
	// maximal itemsets.
	MaxConsequent int
}

// Sort orders rules by descending confidence, then descending support, then
// lexicographically — a stable, deterministic presentation order.
func Sort(rs []Rule) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if c := a.Antecedent.Compare(b.Antecedent); c != 0 {
			return c < 0
		}
		return a.Consequent.Compare(b.Consequent) < 0
	})
}

// supportOracle answers fractional supports for itemsets known frequent.
type supportOracle struct {
	counts  *itemset.Set
	numTx   float64
	missing bool // a lookup failed (indicates an inconsistent input)
}

func (o *supportOracle) frac(x itemset.Itemset) float64 {
	c, ok := o.counts.Count(x)
	if !ok {
		o.missing = true
		return 0
	}
	return float64(c) / o.numTx
}

// FromFrequentSet runs ap-genrules over a complete frequent set with
// support counts (for example apriori's Result.Frequent). numTransactions
// is |D|. It returns the rules sorted by Sort.
func FromFrequentSet(frequent *itemset.Set, numTransactions int, p Params) ([]Rule, error) {
	if numTransactions <= 0 {
		return nil, fmt.Errorf("rules: numTransactions must be positive")
	}
	oracle := &supportOracle{counts: frequent, numTx: float64(numTransactions)}
	var out []Rule
	frequent.Each(func(f itemset.Itemset, _ int64) {
		if len(f) < 2 {
			return
		}
		out = append(out, genRulesFor(f, oracle, p)...)
	})
	if oracle.missing {
		return nil, fmt.Errorf("rules: frequent set is not downward closed (missing subset supports)")
	}
	Sort(out)
	return out, nil
}

// genRulesFor is ap-genrules for one frequent itemset f: consequents grow
// level-wise, and a consequent that fails the confidence test prunes all its
// supersets (confidence is anti-monotone in the consequent).
func genRulesFor(f itemset.Itemset, oracle *supportOracle, p Params) []Rule {
	fSup := oracle.frac(f)
	var out []Rule
	// level 1 consequents
	var level []itemset.Itemset
	for _, it := range f {
		level = append(level, itemset.Itemset{it})
	}
	maxLen := len(f) - 1
	if p.MaxConsequent > 0 && p.MaxConsequent < maxLen {
		maxLen = p.MaxConsequent
	}
	for k := 1; k <= maxLen && len(level) > 0; k++ {
		var surviving []itemset.Itemset
		for _, cons := range level {
			ant := f.Minus(cons)
			conf := 0.0
			if aSup := oracle.frac(ant); aSup > 0 {
				conf = fSup / aSup
			}
			if conf >= p.MinConfidence {
				aSup := oracle.frac(ant)
				cSup := oracle.frac(cons)
				lift := 0.0
				if cSup > 0 {
					lift = conf / cSup
				}
				out = append(out, Rule{
					Antecedent: ant, Consequent: cons,
					Support: fSup, Confidence: conf, Lift: lift,
					AntecedentSupport: aSup, ConsequentSupport: cSup,
				})
				surviving = append(surviving, cons)
			}
		}
		if k == maxLen {
			break
		}
		// next-level consequents: joins of surviving ones (ap-genrules uses
		// Apriori-gen on the consequent sets)
		itemset.SortItemsets(surviving)
		seen := itemset.NewSet(0)
		var next []itemset.Itemset
		for i := 0; i < len(surviving); i++ {
			for j := i + 1; j < len(surviving); j++ {
				if !itemset.SamePrefix(surviving[i], surviving[j], k-1) {
					break
				}
				c := surviving[i].Union(surviving[j])
				if !seen.Contains(c) {
					seen.Add(c)
					next = append(next, c)
				}
			}
		}
		level = next
	}
	return out
}

// FromMFS generates rules from a maximum frequent set alone, per §2.1: all
// subsets of the maximal frequent itemsets down to the needed lengths are
// materialized, their supports counted in one extra pass over the database,
// and ap-genrules is run on the result.
//
// maxItemsetLen caps the length of frequent itemsets considered as rule
// sources (0 = no cap); with very long maximal itemsets the subset lattice
// is exponential, and the paper's own use case examines "the maximal
// frequent itemsets and ... itemsets a little shorter".
func FromMFS(sc dataset.Scanner, mfs []itemset.Itemset, maxItemsetLen int, p Params) ([]Rule, error) {
	subsets := mfi.Expand(mfs, maxItemsetLen)
	if len(subsets) == 0 {
		return nil, nil
	}
	counts := CountSubsets(sc, subsets)
	return FromFrequentSet(counts, sc.Len(), p)
}

// CountSubsets counts the supports of the given itemsets in one database
// pass and returns them as a support-annotated Set.
func CountSubsets(sc dataset.Scanner, sets []itemset.Itemset) *itemset.Set {
	counter := counting.NewHashTree(sets)
	sc.Scan(func(tx itemset.Itemset, _ *itemset.Bitset) { counter.Add(tx) })
	out := itemset.NewSet(len(sets))
	for i, c := range counter.Counts() {
		out.AddWithCount(sets[i], c)
	}
	return out
}

// Filter returns the rules matching pred.
func Filter(rs []Rule, pred func(Rule) bool) []Rule {
	var out []Rule
	for _, r := range rs {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}
