package rules

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pincer/internal/apriori"
	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
)

// rulesDataset: {1,2,3} in 4 of 5 transactions, {4} breaks things up.
func rulesDataset() *dataset.Dataset {
	return dataset.New([]dataset.Transaction{
		itemset.New(1, 2, 3),
		itemset.New(1, 2, 3),
		itemset.New(1, 2, 3),
		itemset.New(1, 2, 3, 4),
		itemset.New(1, 4),
	})
}

func mineFrequent(t *testing.T, d *dataset.Dataset, minCount int64) *itemset.Set {
	t.Helper()
	res := must(apriori.MineCount(dataset.NewScanner(d), minCount, apriori.DefaultOptions()))
	return res.Frequent
}

func findRule(rs []Rule, ant, cons itemset.Itemset) (Rule, bool) {
	for _, r := range rs {
		if r.Antecedent.Equal(ant) && r.Consequent.Equal(cons) {
			return r, true
		}
	}
	return Rule{}, false
}

func TestFromFrequentSetBasic(t *testing.T) {
	d := rulesDataset()
	freq := mineFrequent(t, d, 2)
	rs, err := FromFrequentSet(freq, d.Len(), Params{MinConfidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// {2} => {1}: support(1,2)=4/5, support(2)=4/5, conf=1.0
	r, ok := findRule(rs, itemset.New(2), itemset.New(1))
	if !ok {
		t.Fatalf("rule {2}=>{1} missing from %v", rs)
	}
	if math.Abs(r.Support-0.8) > 1e-9 || math.Abs(r.Confidence-1.0) > 1e-9 {
		t.Errorf("rule = %+v", r)
	}
	// {1} => {2}: conf = 0.8/1.0 = 0.8 < 0.9: excluded
	if _, ok := findRule(rs, itemset.New(1), itemset.New(2)); ok {
		t.Error("rule {1}=>{2} should fail the confidence threshold")
	}
	// multi-item consequent: {3} => {1,2} has conf 1.0
	if _, ok := findRule(rs, itemset.New(3), itemset.New(1, 2)); !ok {
		t.Errorf("rule {3}=>{1,2} missing: %v", rs)
	}
	// every returned rule satisfies the threshold and has consistent math
	for _, r := range rs {
		if r.Confidence < 0.9 {
			t.Errorf("rule below threshold: %v", r)
		}
		union := r.Antecedent.Union(r.Consequent)
		wantSup := d.SupportFraction(union)
		if math.Abs(r.Support-wantSup) > 1e-9 {
			t.Errorf("support mismatch for %v: %v vs %v", r, r.Support, wantSup)
		}
		wantConf := wantSup / d.SupportFraction(r.Antecedent)
		if math.Abs(r.Confidence-wantConf) > 1e-9 {
			t.Errorf("confidence mismatch for %v", r)
		}
		if len(r.Antecedent) == 0 || len(r.Consequent) == 0 {
			t.Errorf("degenerate rule %v", r)
		}
		if len(r.Antecedent.Intersect(r.Consequent)) != 0 {
			t.Errorf("overlapping rule %v", r)
		}
	}
}

func TestFromFrequentSetErrors(t *testing.T) {
	freq := itemset.NewSet(0)
	freq.AddWithCount(itemset.New(1, 2), 3) // subsets missing: not downward closed
	if _, err := FromFrequentSet(freq, 10, Params{MinConfidence: 0.5}); err == nil {
		t.Fatal("non-downward-closed input accepted")
	}
	if _, err := FromFrequentSet(freq, 0, Params{}); err == nil {
		t.Fatal("zero transactions accepted")
	}
}

func TestMaxConsequent(t *testing.T) {
	d := rulesDataset()
	freq := mineFrequent(t, d, 2)
	rs, err := FromFrequentSet(freq, d.Len(), Params{MinConfidence: 0.1, MaxConsequent: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if len(r.Consequent) > 1 {
			t.Errorf("consequent too long: %v", r)
		}
	}
	if len(rs) == 0 {
		t.Fatal("no rules")
	}
}

func TestFromMFSMatchesFromFrequentSet(t *testing.T) {
	d := rulesDataset()
	sc := dataset.NewScanner(d)
	res := must(core.MineCount(sc, 2, core.DefaultOptions()))
	got, err := FromMFS(sc, res.MFS, 0, Params{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := FromFrequentSet(mineFrequent(t, d, 2), d.Len(), Params{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("FromMFS %d rules, FromFrequentSet %d:\n%v\nvs\n%v", len(got), len(want), got, want)
	}
	for i := range want {
		if !got[i].Antecedent.Equal(want[i].Antecedent) || !got[i].Consequent.Equal(want[i].Consequent) {
			t.Errorf("rule %d: %v vs %v", i, got[i], want[i])
		}
		if math.Abs(got[i].Confidence-want[i].Confidence) > 1e-9 {
			t.Errorf("rule %d confidence: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestQuickFromMFSMatchesFromFrequentSet(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		universe := 4 + r.Intn(6)
		d := dataset.Empty(universe)
		numTx := 6 + r.Intn(30)
		for i := 0; i < numTx; i++ {
			n := 1 + r.Intn(universe)
			items := make([]itemset.Item, n)
			for j := range items {
				items[j] = itemset.Item(r.Intn(universe))
			}
			d.Append(itemset.New(items...))
		}
		minCount := int64(2 + r.Intn(numTx/2))
		conf := 0.3 + r.Float64()*0.6
		sc := dataset.NewScanner(d)
		res := must(core.MineCount(sc, minCount, core.DefaultOptions()))
		got, err := FromMFS(sc, res.MFS, 0, Params{MinConfidence: conf})
		if err != nil {
			return false
		}
		freq := must(apriori.MineCount(dataset.NewScanner(d), minCount, apriori.DefaultOptions())).Frequent
		want, err := FromFrequentSet(freq, d.Len(), Params{MinConfidence: conf})
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !got[i].Antecedent.Equal(want[i].Antecedent) ||
				!got[i].Consequent.Equal(want[i].Consequent) ||
				math.Abs(got[i].Confidence-want[i].Confidence) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConfidencePruningIsSound(t *testing.T) {
	// ap-genrules prunes consequent supersets of failed consequents; verify
	// against brute force on a fixed dataset.
	d := dataset.New([]dataset.Transaction{
		itemset.New(1, 2, 3, 4),
		itemset.New(1, 2, 3),
		itemset.New(1, 2, 4),
		itemset.New(1, 3, 4),
		itemset.New(2, 3, 4),
		itemset.New(1, 2),
	})
	freq := mineFrequent(t, d, 2)
	for _, conf := range []float64{0.4, 0.6, 0.8, 1.0} {
		rs, err := FromFrequentSet(freq, d.Len(), Params{MinConfidence: conf})
		if err != nil {
			t.Fatal(err)
		}
		brute := bruteForceRules(d, freq, conf)
		if len(rs) != len(brute) {
			t.Fatalf("conf %v: %d rules, brute force %d\n%v\nvs\n%v", conf, len(rs), len(brute), rs, brute)
		}
		for i := range brute {
			if !rs[i].Antecedent.Equal(brute[i].Antecedent) || !rs[i].Consequent.Equal(brute[i].Consequent) {
				t.Fatalf("conf %v rule %d: %v vs %v", conf, i, rs[i], brute[i])
			}
		}
	}
}

func bruteForceRules(d *dataset.Dataset, freq *itemset.Set, minConf float64) []Rule {
	var out []Rule
	freq.Each(func(f itemset.Itemset, _ int64) {
		if len(f) < 2 {
			return
		}
		fSup := d.SupportFraction(f)
		for k := 1; k < len(f); k++ {
			f.EachSubsetOfSize(k, func(cons itemset.Itemset) {
				ant := f.Minus(cons)
				conf := fSup / d.SupportFraction(ant)
				if conf >= minConf {
					cSup := d.SupportFraction(cons)
					out = append(out, Rule{
						Antecedent: ant, Consequent: cons.Clone(),
						Support: fSup, Confidence: conf, Lift: conf / cSup,
					})
				}
			})
		}
	})
	Sort(out)
	return out
}

func TestSortAndString(t *testing.T) {
	rs := []Rule{
		{Antecedent: itemset.New(2), Consequent: itemset.New(3), Confidence: 0.5, Support: 0.2},
		{Antecedent: itemset.New(1), Consequent: itemset.New(2), Confidence: 0.9, Support: 0.1},
		{Antecedent: itemset.New(1), Consequent: itemset.New(3), Confidence: 0.9, Support: 0.3},
	}
	Sort(rs)
	if !rs[0].Antecedent.Equal(itemset.New(1)) || !rs[0].Consequent.Equal(itemset.New(3)) {
		t.Errorf("sort order wrong: %v", rs)
	}
	if rs[2].Confidence != 0.5 {
		t.Errorf("lowest confidence not last: %v", rs)
	}
	s := Rule{
		Antecedent: itemset.New(1, 2), Consequent: itemset.New(3),
		Support: 0.4, Confidence: 0.8, Lift: 1.6,
	}.String()
	if !strings.Contains(s, "{1,2} => {3}") || !strings.Contains(s, "conf 0.800") {
		t.Errorf("String = %q", s)
	}
}

func TestFilter(t *testing.T) {
	rs := []Rule{
		{Lift: 2.0}, {Lift: 0.5}, {Lift: 1.5},
	}
	hi := Filter(rs, func(r Rule) bool { return r.Lift > 1 })
	if len(hi) != 2 {
		t.Fatalf("Filter = %v", hi)
	}
	if got := Filter(nil, func(Rule) bool { return true }); got != nil {
		t.Errorf("Filter(nil) = %v", got)
	}
}

func TestStrongRuleMeasures(t *testing.T) {
	d := rulesDataset() // 5 transactions; {1,2,3} in 4, {4} in 2
	freq := mineFrequent(t, d, 2)
	rs, err := FromFrequentSet(freq, d.Len(), Params{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := findRule(rs, itemset.New(2), itemset.New(1))
	if !ok {
		t.Fatalf("rule {2}=>{1} missing")
	}
	// support(1,2)=0.8, support(2)=0.8, support(1)=1.0
	if math.Abs(r.AntecedentSupport-0.8) > 1e-9 || math.Abs(r.ConsequentSupport-1.0) > 1e-9 {
		t.Fatalf("marginals = %v / %v", r.AntecedentSupport, r.ConsequentSupport)
	}
	// leverage = 0.8 - 0.8*1.0 = 0: {1} is in every transaction, so the
	// rule carries no information beyond the marginal.
	if math.Abs(r.Leverage()) > 1e-9 {
		t.Errorf("Leverage = %v, want 0", r.Leverage())
	}
	// conviction with confidence 1 diverges
	if !math.IsInf(r.Conviction(), 1) {
		t.Errorf("Conviction = %v, want +Inf", r.Conviction())
	}
	if r.IsStrong(d.Len()) {
		t.Error("an uninformative rule passed the strength test")
	}

	// a genuinely correlated rule on a larger dataset
	big := dataset.Empty(4)
	for i := 0; i < 50; i++ {
		big.Append(itemset.New(1, 2))
	}
	for i := 0; i < 50; i++ {
		big.Append(itemset.New(3))
	}
	freqBig := mineFrequent(t, big, 10)
	rs, err = FromFrequentSet(freqBig, big.Len(), Params{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	r, ok = findRule(rs, itemset.New(1), itemset.New(2))
	if !ok {
		t.Fatal("rule {1}=>{2} missing")
	}
	// leverage = 0.5 - 0.25 = 0.25; χ² = n for a perfect 2x2 association
	if math.Abs(r.Leverage()-0.25) > 1e-9 {
		t.Errorf("Leverage = %v, want 0.25", r.Leverage())
	}
	if got := r.ChiSquare(big.Len()); math.Abs(got-float64(big.Len())) > 1e-6 {
		t.Errorf("ChiSquare = %v, want %d", got, big.Len())
	}
	if !r.IsStrong(big.Len()) {
		t.Error("perfectly correlated rule not strong")
	}
	// conviction of a non-exact rule is finite
	imperfect := Rule{Support: 0.4, Confidence: 0.8, AntecedentSupport: 0.5, ConsequentSupport: 0.6}
	if c := imperfect.Conviction(); math.IsInf(c, 1) || math.Abs(c-2.0) > 1e-9 {
		t.Errorf("Conviction = %v, want 2.0", c)
	}
}

func TestFromMFSEmpty(t *testing.T) {
	sc := dataset.NewScanner(dataset.Empty(3))
	rs, err := FromMFS(sc, nil, 0, Params{MinConfidence: 0.5})
	if err != nil || rs != nil {
		t.Fatalf("FromMFS empty = %v, %v", rs, err)
	}
}

// must unwraps the (result, error) mining returns; in-memory test scans
// cannot fail.
func must[R any](res R, err error) R {
	if err != nil {
		panic(err)
	}
	return res
}
