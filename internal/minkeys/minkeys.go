// Package minkeys discovers the minimal keys of a relation — one of the
// data mining problems the paper lists in §1 as reducible to maximum-
// frequent-set discovery (via Mannila & Toivonen's theory of levelwise
// search and borders, the paper's reference [11]).
//
// The reduction: the *agree set* of two tuples is the set of attributes on
// which they coincide. An attribute set X fails to be a key exactly when
// some pair of tuples agrees on all of X, i.e. when X is a subset of some
// agree set. The maximal non-keys are therefore the maximal agree sets —
// which is precisely a maximum-frequent-set computation over the database
// whose "transactions" are the agree sets (support threshold: one
// occurrence), solved here by Pincer-Search. The minimal keys are then the
// minimal transversals (hitting sets) of the complements of the maximal
// non-keys, computed with Berge's algorithm.
package minkeys

import (
	"fmt"

	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
)

// Relation is a table: Attrs names the columns, Rows holds the tuples
// (each the same length as Attrs).
type Relation struct {
	Attrs []string
	Rows  [][]string
}

// Validate checks the shape of the relation.
func (r *Relation) Validate() error {
	if len(r.Attrs) == 0 {
		return fmt.Errorf("minkeys: relation has no attributes")
	}
	for i, row := range r.Rows {
		if len(row) != len(r.Attrs) {
			return fmt.Errorf("minkeys: row %d has %d values, want %d", i, len(row), len(r.Attrs))
		}
	}
	return nil
}

// Result reports the discovery outcome. Attribute sets are itemsets over
// column indices; use AttrNames to render them.
type Result struct {
	// MinimalKeys holds every minimal key, in lexicographic order. Empty
	// when the relation contains duplicate rows (then no attribute set is
	// a key). A single empty itemset means the empty set is a key (the
	// relation has at most one row).
	MinimalKeys []itemset.Itemset
	// MaximalNonKeys holds the maximal agree sets — the complements drive
	// the transversal computation and are reported for inspection.
	MaximalNonKeys []itemset.Itemset
	// HasDuplicateRows reports that two identical rows exist.
	HasDuplicateRows bool
	// Pairs is the number of tuple pairs examined.
	Pairs int
}

// AttrNames renders an attribute set using the relation's column names.
func (r *Relation) AttrNames(s itemset.Itemset) []string {
	out := make([]string, len(s))
	for i, a := range s {
		out[i] = r.Attrs[a]
	}
	return out
}

// Find computes the minimal keys of the relation.
//
// The agree-set step examines every pair of rows (O(n²·|Attrs|)); cap the
// row count for very large relations (the agree-set distribution stabilizes
// quickly on real data).
func Find(rel *Relation) (*Result, error) {
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	numAttrs := len(rel.Attrs)
	res := &Result{}

	if len(rel.Rows) <= 1 {
		// Any set — including the empty one — identifies at most one tuple.
		res.MinimalKeys = []itemset.Itemset{nil}
		return res, nil
	}

	// Agree sets of all row pairs form the transaction database.
	agree := dataset.Empty(numAttrs)
	full := itemset.Range(0, itemset.Item(numAttrs))
	for i := 0; i < len(rel.Rows); i++ {
		for j := i + 1; j < len(rel.Rows); j++ {
			res.Pairs++
			var s itemset.Itemset
			for a := 0; a < numAttrs; a++ {
				if rel.Rows[i][a] == rel.Rows[j][a] {
					s = append(s, itemset.Item(a))
				}
			}
			if len(s) == numAttrs {
				res.HasDuplicateRows = true
			}
			agree.Append(s)
		}
	}
	if res.HasDuplicateRows {
		// Two identical tuples: nothing separates them, no key exists.
		res.MaximalNonKeys = []itemset.Itemset{full}
		return res, nil
	}

	// Maximal non-keys = maximal agree sets = the MFS of the agree-set
	// database at support ≥ 1 occurrence.
	opt := core.DefaultOptions()
	opt.KeepFrequent = false
	mined, err := core.MineCount(dataset.NewScanner(agree), 1, opt)
	if err != nil {
		return nil, err
	}
	res.MaximalNonKeys = mined.MFS
	if len(res.MaximalNonKeys) == 0 {
		// Every pair disagrees on every attribute: the only non-key is the
		// empty set (itemset miners report non-empty itemsets only), and
		// its complement edge — the full attribute set — forces every key
		// to be non-empty.
		res.MaximalNonKeys = []itemset.Itemset{nil}
	}

	// Minimal keys = minimal transversals of the complements.
	edges := make([]itemset.Itemset, 0, len(res.MaximalNonKeys))
	for _, nk := range res.MaximalNonKeys {
		edges = append(edges, full.Minus(nk))
	}
	res.MinimalKeys = MinimalTransversals(numAttrs, edges)
	return res, nil
}

// MinimalTransversals computes the minimal hitting sets of a hypergraph
// over the universe {0..numItems-1} with Berge's incremental algorithm:
// fold edges in one at a time, extending every transversal that misses the
// new edge by each of its vertices and re-minimizing.
//
// An empty edge has no transversal: the result is empty. No edges at all
// are hit vacuously: the result is the single empty set.
func MinimalTransversals(numItems int, edges []itemset.Itemset) []itemset.Itemset {
	current := []itemset.Itemset{nil} // the empty transversal hits no edges yet
	for _, e := range edges {
		if len(e) == 0 {
			return nil
		}
		var next []itemset.Itemset
		for _, t := range current {
			if len(t.Intersect(e)) > 0 {
				next = append(next, t)
				continue
			}
			for _, v := range e {
				next = append(next, t.With(v))
			}
		}
		current = itemset.MinimalOnly(next)
	}
	return current
}

// IsKey reports whether the attribute set distinguishes every pair of rows.
// It is the direct O(n²) check used to validate discovery results.
func IsKey(rel *Relation, attrs itemset.Itemset) bool {
	seen := make(map[string]bool, len(rel.Rows))
	for _, row := range rel.Rows {
		key := ""
		for _, a := range attrs {
			key += row[a] + "\x00"
		}
		if seen[key] {
			return false
		}
		seen[key] = true
	}
	return true
}
