package minkeys

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"pincer/internal/itemset"
)

func employeeRelation() *Relation {
	// id is a key; (name, dept) is a key; name alone is not (two Alices).
	return &Relation{
		Attrs: []string{"id", "name", "dept", "city"},
		Rows: [][]string{
			{"1", "alice", "eng", "nyc"},
			{"2", "bob", "eng", "nyc"},
			{"3", "alice", "sales", "nyc"},
			{"4", "carol", "sales", "sf"},
		},
	}
}

func TestFindEmployeeKeys(t *testing.T) {
	rel := employeeRelation()
	res, err := Find(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.HasDuplicateRows {
		t.Fatal("no duplicates expected")
	}
	// every reported key is actually a key and is minimal
	for _, k := range res.MinimalKeys {
		if !IsKey(rel, k) {
			t.Errorf("%v (attrs %v) is not a key", k, rel.AttrNames(k))
		}
		k.Facets(func(sub itemset.Itemset) {
			if IsKey(rel, sub.Clone()) {
				t.Errorf("%v is not minimal: %v already a key", k, sub)
			}
		})
	}
	// id must be among them
	foundID := false
	for _, k := range res.MinimalKeys {
		if k.Equal(itemset.New(0)) {
			foundID = true
		}
	}
	if !foundID {
		t.Errorf("id not found as minimal key: %v", res.MinimalKeys)
	}
	// completeness: brute force over all attribute subsets
	want := bruteForceMinimalKeys(rel)
	if len(want) != len(res.MinimalKeys) {
		t.Fatalf("keys = %v, want %v", res.MinimalKeys, want)
	}
	for i := range want {
		if !want[i].Equal(res.MinimalKeys[i]) {
			t.Errorf("key %d = %v, want %v", i, res.MinimalKeys[i], want[i])
		}
	}
	if res.Pairs != 6 {
		t.Errorf("Pairs = %d", res.Pairs)
	}
}

func TestFindDegenerateRelations(t *testing.T) {
	// empty relation: empty set is a key
	res, err := Find(&Relation{Attrs: []string{"a"}, Rows: nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MinimalKeys) != 1 || len(res.MinimalKeys[0]) != 0 {
		t.Errorf("keys = %v, want [{}]", res.MinimalKeys)
	}
	// single row: same
	res, err = Find(&Relation{Attrs: []string{"a", "b"}, Rows: [][]string{{"x", "y"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MinimalKeys) != 1 || len(res.MinimalKeys[0]) != 0 {
		t.Errorf("keys = %v", res.MinimalKeys)
	}
	// duplicate rows: no key
	res, err = Find(&Relation{Attrs: []string{"a"}, Rows: [][]string{{"x"}, {"x"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasDuplicateRows || len(res.MinimalKeys) != 0 {
		t.Errorf("dup=%v keys=%v", res.HasDuplicateRows, res.MinimalKeys)
	}
	// shape errors
	if _, err := Find(&Relation{}); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := Find(&Relation{Attrs: []string{"a"}, Rows: [][]string{{"x", "y"}}}); err == nil {
		t.Error("ragged row accepted")
	}
}

func TestAttrNames(t *testing.T) {
	rel := employeeRelation()
	got := rel.AttrNames(itemset.New(1, 2))
	if len(got) != 2 || got[0] != "name" || got[1] != "dept" {
		t.Errorf("AttrNames = %v", got)
	}
}

func TestMinimalTransversals(t *testing.T) {
	tests := []struct {
		name  string
		edges []itemset.Itemset
		want  []itemset.Itemset
	}{
		{"no edges", nil, []itemset.Itemset{nil}},
		{"single edge", []itemset.Itemset{itemset.New(0, 1)},
			[]itemset.Itemset{itemset.New(0), itemset.New(1)}},
		{"empty edge kills all", []itemset.Itemset{itemset.New(0), nil}, nil},
		{
			"two disjoint edges",
			[]itemset.Itemset{itemset.New(0), itemset.New(1)},
			[]itemset.Itemset{itemset.New(0, 1)},
		},
		{
			"triangle",
			[]itemset.Itemset{itemset.New(0, 1), itemset.New(1, 2), itemset.New(0, 2)},
			[]itemset.Itemset{itemset.New(0, 1), itemset.New(0, 2), itemset.New(1, 2)},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := MinimalTransversals(3, tc.edges)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if !got[i].Equal(tc.want[i]) {
					t.Errorf("transversal %d = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func bruteForceMinimalKeys(rel *Relation) []itemset.Itemset {
	n := len(rel.Attrs)
	var keys []itemset.Itemset
	full := itemset.Range(0, itemset.Item(n))
	for k := 0; k <= n; k++ {
		full.EachSubsetOfSize(k, func(s itemset.Itemset) {
			if IsKey(rel, s) {
				keys = append(keys, s.Clone())
			}
		})
	}
	return itemset.MinimalOnly(keys)
}

func TestQuickFindMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numAttrs := 2 + r.Intn(4)
		numRows := 2 + r.Intn(8)
		domain := 2 + r.Intn(3)
		rel := &Relation{}
		for a := 0; a < numAttrs; a++ {
			rel.Attrs = append(rel.Attrs, "a"+strconv.Itoa(a))
		}
		for i := 0; i < numRows; i++ {
			row := make([]string, numAttrs)
			for a := range row {
				row[a] = strconv.Itoa(r.Intn(domain))
			}
			rel.Rows = append(rel.Rows, row)
		}
		res, err := Find(rel)
		if err != nil {
			return false
		}
		if res.HasDuplicateRows {
			// brute force agrees there is no key
			return len(bruteForceMinimalKeys(rel)) == 0
		}
		want := bruteForceMinimalKeys(rel)
		if len(want) != len(res.MinimalKeys) {
			return false
		}
		for i := range want {
			if !want[i].Equal(res.MinimalKeys[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
