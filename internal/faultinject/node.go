package faultinject

import (
	"errors"
	"sync"
)

// ErrNodeKilled is the error a killed node's hooks return; the cluster
// worker surfaces it as a 5xx, which the coordinator treats like any other
// node failure.
var ErrNodeKilled = errors.New("faultinject: node killed")

// NodeKill models the crash of one cluster worker node. Wired into a
// cluster worker's fault seams (Down / CountHook / TxHook), it kills the
// node at the start of the TripAtCount-th count request (a pass-barrier
// crash) or, with AfterTx > 0, after that request has scanned AfterTx
// transactions (a mid-scan crash). Once tripped the node stays down —
// every subsequent request, heartbeats included, fails — until Revive,
// exactly like a crashed process awaiting restart.
type NodeKill struct {
	// TripAtCount is the 1-based count-request ordinal to kill at
	// (0 = never trip; the node only goes down via Kill).
	TripAtCount int
	// AfterTx delays the trip until the tripping request has scanned this
	// many transactions (0 = at the pass barrier, before any scanning).
	AfterTx int
	// OnTrip, when set, runs once at the trip.
	OnTrip func()

	mu     sync.Mutex
	counts int
	armed  bool // the tripping count is in progress (AfterTx > 0)
	txSeen int
	down   bool
}

// Down reports whether the node is dead; wire it to the worker's Down seam.
func (k *NodeKill) Down() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.down
}

// Kill forces the node down immediately (the chaos harness's external
// kill, independent of any tripwire).
func (k *NodeKill) Kill() {
	k.mu.Lock()
	k.down = true
	k.mu.Unlock()
}

// Revive brings the node back up and disarms a pending mid-scan trip; the
// tripwire does not re-trip.
func (k *NodeKill) Revive() {
	k.mu.Lock()
	k.down = false
	k.armed = false
	k.mu.Unlock()
}

// Arm re-arms the tripwire on a live node: the node goes down at the
// tripAtCount-th count request from now (its count ordinal restarts at
// zero), after afterTx scanned transactions (0 = right at the pass
// barrier). Unlike setting the fields directly — which is only safe before
// the node serves traffic — Arm synchronizes with in-flight hooks, so the
// chaos harness can schedule barrier and mid-scan kills mid-run.
func (k *NodeKill) Arm(tripAtCount, afterTx int) {
	k.mu.Lock()
	k.counts = 0
	k.TripAtCount = tripAtCount
	k.AfterTx = afterTx
	k.armed = false
	k.mu.Unlock()
}

// CountHook registers one count request; wire it to the worker's
// CountHook seam. It returns ErrNodeKilled at a pass-barrier trip.
func (k *NodeKill) CountHook() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.down {
		return ErrNodeKilled
	}
	k.counts++
	if k.TripAtCount == 0 || k.counts != k.TripAtCount {
		return nil
	}
	if k.AfterTx > 0 {
		k.armed = true
		k.txSeen = 0
		return nil
	}
	k.trip()
	return ErrNodeKilled
}

// TxHook registers one scanned transaction; wire it to the worker's
// TxHook seam. It returns ErrNodeKilled at a mid-scan trip.
func (k *NodeKill) TxHook() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.down {
		return ErrNodeKilled
	}
	if !k.armed {
		return nil
	}
	k.txSeen++
	if k.txSeen < k.AfterTx {
		return nil
	}
	k.armed = false
	k.trip()
	return ErrNodeKilled
}

// trip marks the node down (caller holds mu).
func (k *NodeKill) trip() {
	k.down = true
	if k.OnTrip != nil {
		k.OnTrip()
	}
}
