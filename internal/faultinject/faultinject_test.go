package faultinject_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"pincer/internal/apriori"
	"pincer/internal/checkpoint"
	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/faultinject"
	"pincer/internal/mfi"
	"pincer/internal/parallel"
	"pincer/internal/quest"
)

// testData is the shared workload: small enough that the full fault matrix
// (every pass boundary × every flavor × kill/cancel, each followed by a
// resumed run) stays fast under -race, but structured enough to take
// several passes.
func testData() (*dataset.Dataset, int64) {
	d := quest.Generate(quest.Params{
		NumTransactions:  800,
		AvgTxLen:         10,
		AvgPatternLen:    4,
		NumPatterns:      15,
		NumItems:         30,
		Seed:             7,
		CorrelationLevel: 0.5,
		CorruptionMean:   0.5,
		CorruptionStdDev: 0.1,
	})
	return d, dataset.MinCountFor(d.Len(), 0.05)
}

// faultRun runs one faulted mine; it must return a *mfi.PartialResultError.
type faultRun func(cp checkpoint.Checkpointer) error

// flavor is one miner configuration under test.
type flavor struct {
	name     string
	baseline func() (*mfi.Result, error)
	resume   func(cp checkpoint.Checkpointer) (*mfi.Result, error)
	// faults enumerates the fault points for the pass-boundary index
	// pass (1-based); half is a mid-scan transaction offset.
	faults func(pass, half int) map[string]faultRun
}

func flavors(d *dataset.Dataset, minCount int64) []flavor {
	coreOpt := func(cp checkpoint.Checkpointer) core.Options {
		o := core.DefaultOptions()
		o.Checkpointer = cp
		return o
	}
	parOpt := func(cp checkpoint.Checkpointer, ctr core.PassCounter) core.Options {
		o := coreOpt(cp)
		o.Algorithm = "pincer-parallel"
		o.Counter = ctr
		return o
	}
	aprOpt := func(cp checkpoint.Checkpointer) apriori.Options {
		o := apriori.DefaultOptions()
		o.Checkpointer = cp
		return o
	}

	fl := []flavor{
		{
			name: "pincer-sequential",
			baseline: func() (*mfi.Result, error) {
				return core.MineCount(dataset.NewScanner(d), minCount, coreOpt(nil))
			},
			resume: func(cp checkpoint.Checkpointer) (*mfi.Result, error) {
				return core.MineResume(dataset.NewScanner(d), minCount, coreOpt(cp))
			},
			faults: func(pass, half int) map[string]faultRun {
				kill := func(afterTx int) faultRun {
					return func(cp checkpoint.Checkpointer) error {
						sc := &faultinject.Scanner{Scanner: dataset.NewScanner(d), TripAtScan: pass, AfterTx: afterTx}
						_, err := core.MineCount(sc, minCount, coreOpt(cp))
						return err
					}
				}
				return map[string]faultRun{
					"kill-boundary": kill(0),
					"kill-midscan":  kill(half),
					"cancel-midscan": func(cp checkpoint.Checkpointer) error {
						ctx, cancel := context.WithCancel(context.Background())
						defer cancel()
						sc := &faultinject.Scanner{Scanner: dataset.NewScanner(d), TripAtScan: pass, AfterTx: half, OnTrip: cancel}
						o := coreOpt(cp)
						o.Context = ctx
						o.CancelCheckEvery = 1
						_, err := core.MineCount(sc, minCount, o)
						return err
					},
				}
			},
		},
		{
			name: "apriori",
			baseline: func() (*mfi.Result, error) {
				return apriori.MineCount(dataset.NewScanner(d), minCount, aprOpt(nil))
			},
			resume: func(cp checkpoint.Checkpointer) (*mfi.Result, error) {
				return apriori.MineResume(dataset.NewScanner(d), minCount, aprOpt(cp))
			},
			faults: func(pass, half int) map[string]faultRun {
				kill := func(afterTx int) faultRun {
					return func(cp checkpoint.Checkpointer) error {
						sc := &faultinject.Scanner{Scanner: dataset.NewScanner(d), TripAtScan: pass, AfterTx: afterTx}
						_, err := apriori.MineCount(sc, minCount, aprOpt(cp))
						return err
					}
				}
				return map[string]faultRun{
					"kill-boundary": kill(0),
					"kill-midscan":  kill(half),
					"cancel-midscan": func(cp checkpoint.Checkpointer) error {
						ctx, cancel := context.WithCancel(context.Background())
						defer cancel()
						sc := &faultinject.Scanner{Scanner: dataset.NewScanner(d), TripAtScan: pass, AfterTx: half, OnTrip: cancel}
						o := aprOpt(cp)
						o.Context = ctx
						o.CancelCheckEvery = 1
						_, err := apriori.MineCount(sc, minCount, o)
						return err
					},
				}
			},
		},
		{
			name: "pincer-stream-w2",
			baseline: func() (*mfi.Result, error) {
				ctr := parallel.NewStreamPassCounter(dataset.NewScanner(d), 2)
				return core.MineCount(dataset.NewScanner(d), minCount, parOpt(nil, ctr))
			},
			resume: func(cp checkpoint.Checkpointer) (*mfi.Result, error) {
				ctr := parallel.NewStreamPassCounter(dataset.NewScanner(d), 2)
				return core.MineResume(dataset.NewScanner(d), minCount, parOpt(cp, ctr))
			},
			faults: func(pass, half int) map[string]faultRun {
				kill := func(afterTx int) faultRun {
					return func(cp checkpoint.Checkpointer) error {
						sc := &faultinject.Scanner{Scanner: dataset.NewScanner(d), TripAtScan: pass, AfterTx: afterTx}
						ctr := parallel.NewStreamPassCounter(sc, 2)
						_, err := core.MineCount(dataset.NewScanner(d), minCount, parOpt(cp, ctr))
						return err
					}
				}
				return map[string]faultRun{
					"kill-boundary": kill(0),
					"kill-midscan":  kill(half),
					"cancel-midscan": func(cp checkpoint.Checkpointer) error {
						ctx, cancel := context.WithCancel(context.Background())
						defer cancel()
						sc := &faultinject.Scanner{Scanner: dataset.NewScanner(d), TripAtScan: pass, AfterTx: half, OnTrip: cancel}
						ctr := parallel.NewStreamPassCounter(sc, 2)
						o := parOpt(cp, ctr)
						o.Context = ctx
						o.CancelCheckEvery = 1
						_, err := core.MineCount(dataset.NewScanner(d), minCount, o)
						return err
					},
				}
			},
		},
	}

	for _, workers := range []int{1, 4} {
		workers := workers
		name := "pincer-parallel-w1"
		if workers == 4 {
			name = "pincer-parallel-w4"
		}
		fl = append(fl, flavor{
			name: name,
			baseline: func() (*mfi.Result, error) {
				return core.MineCount(dataset.NewScanner(d), minCount, parOpt(nil, parallel.NewPassCounter(d, workers)))
			},
			resume: func(cp checkpoint.Checkpointer) (*mfi.Result, error) {
				return core.MineResume(dataset.NewScanner(d), minCount, parOpt(cp, parallel.NewPassCounter(d, workers)))
			},
			faults: func(pass, half int) map[string]faultRun {
				return map[string]faultRun{
					"kill-boundary": func(cp checkpoint.Checkpointer) error {
						ctr := &faultinject.Counter{Inner: parallel.NewPassCounter(d, workers), TripAt: pass, Mode: faultinject.ModeKill}
						_, err := core.MineCount(dataset.NewScanner(d), minCount, parOpt(cp, ctr))
						return err
					},
					"cancel-midscan": func(cp checkpoint.Checkpointer) error {
						ctx, cancel := context.WithCancel(context.Background())
						defer cancel()
						ctr := &faultinject.Counter{Inner: parallel.NewPassCounter(d, workers), TripAt: pass, Mode: faultinject.ModeCancel, Cancel: cancel}
						o := parOpt(cp, ctr)
						o.Context = ctx
						o.CancelCheckEvery = 1
						_, err := core.MineCount(dataset.NewScanner(d), minCount, o)
						return err
					},
				}
			},
		})
	}
	return fl
}

// sameResult asserts the resumed result is indistinguishable from the
// uninterrupted one: MFS, supports, frequent sets, and the complete pass
// statistics — everything except wall-clock durations.
func sameResult(t *testing.T, want, got *mfi.Result) {
	t.Helper()
	if len(got.MFS) != len(want.MFS) {
		t.Fatalf("MFS size = %d, want %d", len(got.MFS), len(want.MFS))
	}
	for i, m := range want.MFS {
		if !got.MFS[i].Equal(m) {
			t.Fatalf("MFS[%d] = %v, want %v", i, got.MFS[i], m)
		}
		if got.MFSSupports[i] != want.MFSSupports[i] {
			t.Fatalf("MFSSupports[%d] = %d, want %d", i, got.MFSSupports[i], want.MFSSupports[i])
		}
	}
	if (got.Frequent == nil) != (want.Frequent == nil) {
		t.Fatalf("Frequent nil-ness differs: got %v, want %v", got.Frequent == nil, want.Frequent == nil)
	}
	if want.Frequent != nil {
		wf, gf := want.Frequent.Sorted(), got.Frequent.Sorted()
		if len(wf) != len(gf) {
			t.Fatalf("frequent set size = %d, want %d", len(gf), len(wf))
		}
		for i := range wf {
			if !wf[i].Equal(gf[i]) {
				t.Fatalf("frequent[%d] = %v, want %v", i, gf[i], wf[i])
			}
			wc, _ := want.Frequent.Count(wf[i])
			gc, _ := got.Frequent.Count(gf[i])
			if wc != gc {
				t.Fatalf("count(%v) = %d, want %d", wf[i], gc, wc)
			}
		}
	}
	ws, gs := want.Stats, got.Stats
	ws.Duration, gs.Duration = 0, 0
	if !reflect.DeepEqual(ws, gs) {
		t.Fatalf("stats diverge:\n got %+v\nwant %+v", gs, ws)
	}
}

// TestResumeEquivalence is the fault-injection matrix of ISSUE 3: for every
// miner flavor, kill or cancel the run at every pass boundary and mid-scan
// point, resume from the surviving checkpoint, and require the final result
// to be identical to an uninterrupted run.
func TestResumeEquivalence(t *testing.T) {
	d, minCount := testData()
	half := d.Len() / 2
	for _, f := range flavors(d, minCount) {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			base, err := f.baseline()
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			passes := base.Stats.Passes
			if passes < 3 {
				t.Fatalf("workload finished in %d passes; too shallow to exercise the matrix", passes)
			}
			for pass := 1; pass <= passes; pass++ {
				for fname, fault := range f.faults(pass, half) {
					t.Run(fname+"/pass"+itoa(pass), func(t *testing.T) {
						cp := &checkpoint.MemCheckpointer{}
						ferr := fault(cp)
						if ferr == nil {
							t.Fatalf("fault at pass %d did not trip", pass)
						}
						var pe *mfi.PartialResultError
						if !errors.As(ferr, &pe) {
							t.Fatalf("fault returned %T (%v), want *mfi.PartialResultError", ferr, ferr)
						}
						if pe.Result == nil {
							t.Fatalf("partial result is nil")
						}
						got, rerr := f.resume(cp)
						if rerr != nil {
							t.Fatalf("resume: %v", rerr)
						}
						sameResult(t, base, got)
					})
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestPartialResultIsAnytime checks the anytime contract on the faulted
// runs themselves: the partial MFS is a lower bound (every element is
// contained in some true maximal frequent itemset) and the reported MFCS is
// an upper bound (every true maximal frequent itemset is contained in some
// MFCS element).
func TestPartialResultIsAnytime(t *testing.T) {
	d, minCount := testData()
	base, err := core.MineCount(dataset.NewScanner(d), minCount, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for pass := 1; pass <= base.Stats.Passes; pass++ {
		sc := &faultinject.Scanner{Scanner: dataset.NewScanner(d), TripAtScan: pass, AfterTx: d.Len() / 2}
		_, ferr := core.MineCount(sc, minCount, core.DefaultOptions())
		var pe *mfi.PartialResultError
		if !errors.As(ferr, &pe) {
			t.Fatalf("pass %d: got %v, want *mfi.PartialResultError", pass, ferr)
		}
		for _, m := range pe.Result.MFS {
			covered := false
			for _, full := range base.MFS {
				if m.IsSubsetOf(full) {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("pass %d: partial MFS element %v not below any true maximal set", pass, m)
			}
		}
		for _, full := range base.MFS {
			covered := false
			for _, u := range pe.MFCS {
				if full.IsSubsetOf(u) {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("pass %d: true maximal set %v not covered by the reported MFCS bound %v", pass, full, pe.MFCS)
			}
		}
	}
}
