// Package faultinject provides test-only fault injection at the two seams
// every miner shares: the dataset.Scanner (mid-scan and pass-boundary
// crashes for miners that scan directly) and the core.PassCounter
// (pass-boundary crashes and cancellations for the Pincer miners, whose
// every database pass is exactly one counting call).
//
// A "kill" is simulated by panicking with an *mfi.Abort carrying
// ReasonKill: the run unwinds through the normal abort recovery, returns a
// *mfi.PartialResultError, and — crucially for the resume tests — never
// reaches the success path that clears the checkpoint, exactly like a
// crashed process whose checkpoint file survives on disk. A "cancel" calls
// the run's context CancelFunc at the fault point and then proceeds into
// the pass, so the in-scan guards (sequential and per-worker) abort
// mid-scan.
package faultinject

import (
	"context"
	"errors"

	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
)

// ErrInjected is the cause carried by every injected fault.
var ErrInjected = errors.New("faultinject: injected fault")

// ReasonKill is the abort reason of a simulated crash.
const ReasonKill = "fault-kill"

// Mode selects what happens at the fault point.
type Mode int

const (
	// ModeKill panics with an *mfi.Abort — a simulated crash.
	ModeKill Mode = iota
	// ModeCancel invokes the configured CancelFunc and continues into the
	// pass, so the miner's own mid-scan guards abort it.
	ModeCancel
)

func kill() {
	panic(&mfi.Abort{Reason: ReasonKill, Cause: ErrInjected})
}

// Counter wraps a core.PassCounter and trips at the start of the TripAt-th
// counting call (1-based) — the boundary of the TripAt-th database pass,
// since the miner charges exactly one counting call per pass.
type Counter struct {
	Inner  core.PassCounter
	TripAt int
	Mode   Mode
	// Cancel is invoked by ModeCancel at the fault point.
	Cancel context.CancelFunc

	calls int
}

func (c *Counter) trip() {
	c.calls++
	if c.calls != c.TripAt {
		return
	}
	switch c.Mode {
	case ModeKill:
		kill()
	case ModeCancel:
		if c.Cancel != nil {
			c.Cancel()
		}
	}
}

// CountItems implements core.PassCounter.
func (c *Counter) CountItems(numItems int, elems []itemset.Itemset, elemBits []*itemset.Bitset) ([]int64, []int64) {
	c.trip()
	return c.Inner.CountItems(numItems, elems, elemBits)
}

// CountPairs implements core.PassCounter.
func (c *Counter) CountPairs(numItems int, live itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) (*counting.Triangle, []int64) {
	c.trip()
	return c.Inner.CountPairs(numItems, live, elems, elemBits)
}

// CountCandidates implements core.PassCounter.
func (c *Counter) CountCandidates(engine counting.Engine, candidates []itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) ([]int64, []int64) {
	c.trip()
	return c.Inner.CountCandidates(engine, candidates, elems, elemBits)
}

// BindContext forwards the run's context to the wrapped counter when it
// supports mid-scan checks.
func (c *Counter) BindContext(ctx context.Context, checkEvery int) {
	if b, ok := c.Inner.(core.ContextBinder); ok {
		b.BindContext(ctx, checkEvery)
	}
}

// Workers reports the wrapped counter's goroutine count.
func (c *Counter) Workers() int {
	if w, ok := c.Inner.(core.WorkerCounted); ok {
		return w.Workers()
	}
	return 1
}

// Scanner wraps a dataset.Scanner and trips during the TripAtScan-th Scan
// call (1-based), after AfterTx transactions have been delivered to the
// callback (0 = immediately, a pass-boundary crash). By default the trip
// simulates a crash — the scan panics with an *mfi.Abort; with OnTrip set
// the hook runs once instead (e.g. a context CancelFunc) and the scan
// continues, letting the miner's own guards abort it. Other Scan calls pass
// through untouched.
type Scanner struct {
	dataset.Scanner
	TripAtScan int
	AfterTx    int
	OnTrip     func()

	scans int
}

// Scan implements dataset.Scanner.
func (s *Scanner) Scan(fn func(itemset.Itemset, *itemset.Bitset)) {
	s.scans++
	if s.scans != s.TripAtScan {
		s.Scanner.Scan(fn)
		return
	}
	delivered := 0
	tripped := false
	s.Scanner.Scan(func(tx itemset.Itemset, bits *itemset.Bitset) {
		if delivered >= s.AfterTx && !tripped {
			tripped = true
			if s.OnTrip == nil {
				kill()
			}
			s.OnTrip()
		}
		delivered++
		fn(tx, bits)
	})
}
