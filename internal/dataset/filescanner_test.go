package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"pincer/internal/itemset"
)

func writeBasket(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.basket")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFileScannerMatchesMemoryScanner(t *testing.T) {
	path := writeBasket(t, "1 2 3\n# comment\n\n4 5\n2 3 1\n")
	fsc, err := OpenFileScanner(path)
	if err != nil {
		t.Fatal(err)
	}
	if fsc.Len() != 3 || fsc.NumItems() != 6 {
		t.Fatalf("Len=%d NumItems=%d", fsc.Len(), fsc.NumItems())
	}
	mem, err := LoadBasketFile(path)
	if err != nil {
		t.Fatal(err)
	}
	msc := NewScanner(mem)

	var fromFile, fromMem []itemset.Itemset
	fsc.Scan(func(tx itemset.Itemset, bits *itemset.Bitset) {
		if !bits.Items().Equal(tx) {
			t.Errorf("bits mismatch: %v vs %v", bits.Items(), tx)
		}
		fromFile = append(fromFile, tx.Clone())
	})
	msc.Scan(func(tx itemset.Itemset, _ *itemset.Bitset) {
		fromMem = append(fromMem, tx.Clone())
	})
	if len(fromFile) != len(fromMem) {
		t.Fatalf("tx counts: %d vs %d", len(fromFile), len(fromMem))
	}
	for i := range fromMem {
		if !fromFile[i].Equal(fromMem[i]) {
			t.Errorf("tx %d: %v vs %v", i, fromFile[i], fromMem[i])
		}
	}
	if fsc.Passes() != 1 {
		t.Errorf("Passes = %d", fsc.Passes())
	}
	fsc.Scan(func(itemset.Itemset, *itemset.Bitset) {})
	if fsc.Passes() != 2 {
		t.Errorf("Passes = %d", fsc.Passes())
	}
}

func TestFileScannerRejectsBadFiles(t *testing.T) {
	if _, err := OpenFileScanner(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeBasket(t, "1 2\n3 x\n")
	if _, err := OpenFileScanner(bad); err == nil {
		t.Error("bad item accepted")
	}
	neg := writeBasket(t, "1 -2\n")
	if _, err := OpenFileScanner(neg); err == nil {
		t.Error("negative item accepted")
	}
}

func TestFileScannerEmptyFile(t *testing.T) {
	path := writeBasket(t, "")
	fsc, err := OpenFileScanner(path)
	if err != nil {
		t.Fatal(err)
	}
	if fsc.Len() != 0 || fsc.NumItems() != 0 {
		t.Fatalf("Len=%d NumItems=%d", fsc.Len(), fsc.NumItems())
	}
	n := 0
	fsc.Scan(func(itemset.Itemset, *itemset.Bitset) { n++ })
	if n != 0 {
		t.Fatalf("scanned %d transactions", n)
	}
}
