package dataset

import "pincer/internal/itemset"

// Scanner abstracts "reading the database once". Mining algorithms receive a
// Scanner rather than a *Dataset so that every pass over the data is
// observable: the paper reports the number of passes as a headline metric,
// and the I/O cost model of §2.2 charges one database read per pass.
//
// Scan invokes fn once per transaction, in a fixed order, passing both the
// sparse and the dense representation of the transaction. Implementations
// must present an identical sequence on every call.
type Scanner interface {
	// Scan performs one full pass over the database.
	Scan(fn func(tx itemset.Itemset, bits *itemset.Bitset))
	// Len returns the number of transactions.
	Len() int
	// NumItems returns the item universe size.
	NumItems() int
	// Passes returns the number of completed Scan calls so far.
	Passes() int
}

// MemoryScanner is the standard Scanner over an in-memory Dataset. The dense
// bitset form of each transaction is materialized once at construction and
// shared across passes.
type MemoryScanner struct {
	data   *Dataset
	bits   []*itemset.Bitset
	passes int
}

// NewScanner wraps a dataset. The dataset must not be mutated while the
// scanner is in use.
func NewScanner(d *Dataset) *MemoryScanner {
	return &MemoryScanner{data: d, bits: d.Bitsets()}
}

// Scan implements Scanner.
func (m *MemoryScanner) Scan(fn func(tx itemset.Itemset, bits *itemset.Bitset)) {
	m.passes++
	for i, t := range m.data.Transactions() {
		fn(t, m.bits[i])
	}
}

// Len implements Scanner.
func (m *MemoryScanner) Len() int { return m.data.Len() }

// NumItems implements Scanner.
func (m *MemoryScanner) NumItems() int { return m.data.NumItems() }

// Passes implements Scanner.
func (m *MemoryScanner) Passes() int { return m.passes }

// Dataset returns the underlying dataset.
func (m *MemoryScanner) Dataset() *Dataset { return m.data }

// ResetPasses zeroes the pass counter (used between benchmark iterations).
func (m *MemoryScanner) ResetPasses() { m.passes = 0 }
