// Package dataset provides the transaction-database substrate: an in-memory
// database of transactions, text ("basket") and binary file formats, and a
// pass-counting reader abstraction so that mining algorithms can be audited
// for the number of times they read the database — one of the three metrics
// the paper reports (passes, candidates, time).
package dataset

import (
	"fmt"
	"sort"

	"pincer/internal/itemset"
)

// Transaction is a single customer transaction: a sorted, duplicate-free
// itemset. The type alias keeps call sites readable without introducing a
// conversion layer.
type Transaction = itemset.Itemset

// Dataset is an in-memory transaction database D.
type Dataset struct {
	transactions []Transaction
	numItems     int // size of the item universe I (max item + 1)
}

// New creates a Dataset from transactions. Each transaction is normalized
// (sorted, de-duplicated); the item universe is inferred as max item + 1.
func New(transactions []Transaction) *Dataset {
	d := &Dataset{transactions: make([]Transaction, 0, len(transactions))}
	for _, t := range transactions {
		d.Append(t)
	}
	return d
}

// Empty creates a Dataset with no transactions and an explicit item
// universe size. Use it when the universe is known a priori (for example,
// the N parameter of a synthetic workload), so that the initial MFCS element
// {0, …, N-1} covers items that happen not to occur.
func Empty(numItems int) *Dataset {
	return &Dataset{numItems: numItems}
}

// Append adds one transaction, normalizing item order and duplicates.
func (d *Dataset) Append(t Transaction) {
	n := itemset.New(t...)
	d.transactions = append(d.transactions, n)
	if len(n) > 0 && int(n.Last())+1 > d.numItems {
		d.numItems = int(n.Last()) + 1
	}
}

// Len returns |D|, the number of transactions.
func (d *Dataset) Len() int { return len(d.transactions) }

// NumItems returns the size of the item universe (one past the largest item).
func (d *Dataset) NumItems() int { return d.numItems }

// SetNumItems widens the declared universe; it refuses to shrink below the
// largest observed item.
func (d *Dataset) SetNumItems(n int) {
	if n > d.numItems {
		d.numItems = n
	}
}

// Transaction returns the i-th transaction. The returned slice must not be
// modified.
func (d *Dataset) Transaction(i int) Transaction { return d.transactions[i] }

// Transactions returns the backing slice. The caller must not modify it.
func (d *Dataset) Transactions() []Transaction { return d.transactions }

// MinCount converts a fractional minimum support (for example 0.02 for 2%)
// into the smallest absolute transaction count that satisfies it. An itemset
// is frequent iff its count ≥ MinCount. Support thresholds of zero or below
// map to a count of 1 (an itemset must occur at all to be frequent).
func (d *Dataset) MinCount(minSupport float64) int64 {
	return MinCountFor(len(d.transactions), minSupport)
}

// MinCountFor is MinCount for an explicit database size.
func MinCountFor(numTransactions int, minSupport float64) int64 {
	if minSupport <= 0 {
		return 1
	}
	c := int64(float64(numTransactions)*minSupport + 0.9999999)
	if c < 1 {
		c = 1
	}
	return c
}

// Support counts the transactions containing x by a full scan. It is the
// reference (and deliberately naive) counting path used by tests and by the
// rule generator's "one extra pass" scheme.
func (d *Dataset) Support(x itemset.Itemset) int64 {
	var n int64
	for _, t := range d.transactions {
		if x.IsSubsetOf(t) {
			n++
		}
	}
	return n
}

// SupportFraction returns Support(x) / |D|.
func (d *Dataset) SupportFraction(x itemset.Itemset) float64 {
	if len(d.transactions) == 0 {
		return 0
	}
	return float64(d.Support(x)) / float64(len(d.transactions))
}

// ItemCounts returns the per-item occurrence counts over the declared
// universe. It is the pass-1 "one-dimensional array" counter of §4.1.1.
func (d *Dataset) ItemCounts() []int64 {
	counts := make([]int64, d.numItems)
	for _, t := range d.transactions {
		for _, it := range t {
			counts[it]++
		}
	}
	return counts
}

// PresentItems returns the sorted set of items that occur in at least one
// transaction.
func (d *Dataset) PresentItems() itemset.Itemset {
	seen := make([]bool, d.numItems)
	for _, t := range d.transactions {
		for _, it := range t {
			seen[it] = true
		}
	}
	var out itemset.Itemset
	for i, ok := range seen {
		if ok {
			out = append(out, itemset.Item(i))
		}
	}
	return out
}

// Stats summarizes a dataset for reporting.
type Stats struct {
	Transactions  int
	Items         int     // declared universe size
	DistinctItems int     // items that actually occur
	AvgLength     float64 // average transaction length
	MaxLength     int
	MinLength     int
}

// Stats computes summary statistics.
func (d *Dataset) Stats() Stats {
	s := Stats{Transactions: len(d.transactions), Items: d.numItems}
	if len(d.transactions) == 0 {
		return s
	}
	s.MinLength = len(d.transactions[0])
	total := 0
	for _, t := range d.transactions {
		total += len(t)
		if len(t) > s.MaxLength {
			s.MaxLength = len(t)
		}
		if len(t) < s.MinLength {
			s.MinLength = len(t)
		}
	}
	s.AvgLength = float64(total) / float64(len(d.transactions))
	s.DistinctItems = len(d.PresentItems())
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("|D|=%d N=%d distinct=%d avg|T|=%.2f min|T|=%d max|T|=%d",
		s.Transactions, s.Items, s.DistinctItems, s.AvgLength, s.MinLength, s.MaxLength)
}

// Sample returns a new dataset holding transactions [lo, hi).
// It shares transaction storage with d.
func (d *Dataset) Slice(lo, hi int) *Dataset {
	if lo < 0 || hi > len(d.transactions) || lo > hi {
		panic(fmt.Sprintf("dataset: Slice(%d,%d) out of range [0,%d]", lo, hi, len(d.transactions)))
	}
	return &Dataset{transactions: d.transactions[lo:hi], numItems: d.numItems}
}

// Partitions splits d into n near-equal contiguous partitions (the unit of
// work of the Partition algorithm). Partitions share storage with d.
func (d *Dataset) Partitions(n int) []*Dataset {
	if n <= 0 {
		n = 1
	}
	if n > len(d.transactions) && len(d.transactions) > 0 {
		n = len(d.transactions)
	}
	out := make([]*Dataset, 0, n)
	total := len(d.transactions)
	for i := 0; i < n; i++ {
		lo := i * total / n
		hi := (i + 1) * total / n
		out = append(out, d.Slice(lo, hi))
	}
	return out
}

// Bitsets converts every transaction into a dense bitset over the declared
// universe. MFCS support counting uses this form: testing whether an MFCS
// element (often hundreds of items long) is contained in a transaction is
// far cheaper against the transaction's bitset.
func (d *Dataset) Bitsets() []*itemset.Bitset {
	out := make([]*itemset.Bitset, len(d.transactions))
	for i, t := range d.transactions {
		out[i] = itemset.BitsetOf(d.numItems, t)
	}
	return out
}

// SortByLength orders transactions by increasing length (stable), which
// improves counting locality. Metrics are unaffected; provided for
// experimentation.
func (d *Dataset) SortByLength() {
	sort.SliceStable(d.transactions, func(i, j int) bool {
		return len(d.transactions[i]) < len(d.transactions[j])
	})
}
