package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pincer/internal/itemset"
)

func TestReadBasket(t *testing.T) {
	in := "1 2 3\n# comment\n\n5,7\n9\t11\n"
	d, err := ReadBasket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	want := []itemset.Itemset{itemset.New(1, 2, 3), itemset.New(5, 7), itemset.New(9, 11)}
	for i, w := range want {
		if !d.Transaction(i).Equal(w) {
			t.Errorf("tx %d = %v, want %v", i, d.Transaction(i), w)
		}
	}
	if d.NumItems() != 12 {
		t.Errorf("NumItems = %d", d.NumItems())
	}
}

func TestReadBasketErrors(t *testing.T) {
	for _, bad := range []string{"1 x 3\n", "-1 2\n", "1 999999999999999\n"} {
		if _, err := ReadBasket(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadBasket(%q) succeeded, want error", bad)
		}
	}
}

func TestBasketRoundTrip(t *testing.T) {
	d := newTestDataset()
	var buf bytes.Buffer
	if err := WriteBasket(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadBasket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameTransactions(t, d, d2)
}

func TestBinaryRoundTrip(t *testing.T) {
	d := Empty(100) // universe wider than any observed item
	d.Append(itemset.New(1, 2, 3))
	d.Append(itemset.Itemset(nil)) // empty transaction survives binary form
	d.Append(itemset.New(42))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameTransactions(t, d, d2)
	if d2.NumItems() != 100 {
		t.Errorf("binary lost universe size: %d", d2.NumItems())
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a database")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("PN")); err == nil {
		t.Fatal("truncated header accepted")
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, newTestDataset()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestFileRoundTripAndSniffing(t *testing.T) {
	dir := t.TempDir()
	d := newTestDataset()

	textPath := filepath.Join(dir, "db.basket")
	if err := SaveBasketFile(textPath, d); err != nil {
		t.Fatal(err)
	}
	got, err := Load(textPath)
	if err != nil {
		t.Fatal(err)
	}
	requireSameTransactions(t, d, got)

	binPath := filepath.Join(dir, "db.bin")
	f, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(f, d); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = Load(binPath)
	if err != nil {
		t.Fatal(err)
	}
	requireSameTransactions(t, d, got)

	if _, err := Load(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
	if _, err := LoadBasketFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("LoadBasketFile of missing file succeeded")
	}
}

func requireSameTransactions(t *testing.T, a, b *Dataset) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("Len mismatch: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if !a.Transaction(i).Equal(b.Transaction(i)) {
			t.Fatalf("tx %d mismatch: %v vs %v", i, a.Transaction(i), b.Transaction(i))
		}
	}
}
