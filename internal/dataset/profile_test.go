package dataset

import (
	"math"
	"testing"

	"pincer/internal/itemset"
)

func TestProfileEmpty(t *testing.T) {
	p := Empty(10).Profile()
	if p.Transactions != 0 || p.Universe != 10 || p.Density != 0 || p.Skew != 0 {
		t.Fatalf("empty profile = %+v", p)
	}
}

func TestProfileUniform(t *testing.T) {
	// Four transactions, each the full universe {0,1,2}: density 1, skew 0.
	d := New([]Transaction{
		itemset.New(0, 1, 2),
		itemset.New(0, 1, 2),
		itemset.New(0, 1, 2),
		itemset.New(0, 1, 2),
	})
	p := d.Profile()
	if p.Transactions != 4 || p.Universe != 3 || p.DistinctItems != 3 {
		t.Fatalf("profile = %+v", p)
	}
	if p.AvgTxLen != 3 || p.MaxTxLen != 3 {
		t.Fatalf("lengths: %+v", p)
	}
	if math.Abs(p.Density-1) > 1e-12 {
		t.Fatalf("density = %v, want 1", p.Density)
	}
	if p.Skew != 0 {
		t.Fatalf("uniform counts must have zero skew, got %v", p.Skew)
	}
}

func TestProfileSkewed(t *testing.T) {
	// Item 0 occurs in every transaction; items 1..8 once each. The count
	// distribution is heavily concentrated, so skew must be well above the
	// uniform case and below 1.
	var txs []Transaction
	for i := 1; i <= 8; i++ {
		txs = append(txs, itemset.New(0, itemset.Item(i)))
	}
	d := New(txs)
	p := d.Profile()
	if p.DistinctItems != 9 {
		t.Fatalf("distinct = %d", p.DistinctItems)
	}
	if p.Skew <= 0.3 || p.Skew >= 1 {
		t.Fatalf("skew = %v, want concentrated (0.3, 1)", p.Skew)
	}
	// Density: avg length 2 over 9 occurring items.
	if math.Abs(p.Density-2.0/9.0) > 1e-12 {
		t.Fatalf("density = %v", p.Density)
	}
}

// TestProfileDeterministic pins the restart contract: the same transactions
// always produce the identical profile (selection must be reproducible when
// a spool-recovered job re-derives its plan).
func TestProfileDeterministic(t *testing.T) {
	mk := func() *Dataset {
		return New([]Transaction{
			itemset.New(3, 1, 4),
			itemset.New(1, 5),
			itemset.New(9, 2, 6, 5),
			itemset.New(3),
		})
	}
	a, b := mk().Profile(), mk().Profile()
	if a != b {
		t.Fatalf("profiles differ: %+v vs %+v", a, b)
	}
}
