package dataset

import "pincer/internal/itemset"

// Compaction remaps sparse item identifiers onto a dense [0, n) range.
// Real-world basket files use SKUs or hashes as item ids; the pass-1 array,
// the pass-2 triangular matrix, and every bitset in the library are sized
// by the universe, so mining a file whose largest id is 10⁷ would waste
// memory proportional to it. Compact the dataset, mine, then translate
// results back with Original.
type Compaction struct {
	// Dataset is the remapped database over the dense universe.
	Dataset *Dataset
	// toOriginal maps dense id -> original id (sorted ascending).
	toOriginal []itemset.Item
}

// Compact builds a dense remapping of d. Items keep their relative order,
// so lexicographic relationships between itemsets are preserved.
func Compact(d *Dataset) *Compaction {
	present := d.PresentItems()
	toDense := make(map[itemset.Item]itemset.Item, len(present))
	for i, it := range present {
		toDense[it] = itemset.Item(i)
	}
	c := &Compaction{Dataset: Empty(len(present)), toOriginal: present}
	for _, tx := range d.Transactions() {
		dense := make(itemset.Itemset, len(tx))
		for i, it := range tx {
			dense[i] = toDense[it]
		}
		c.Dataset.Append(dense)
	}
	return c
}

// NumOriginalItems returns the size of the dense universe (the number of
// distinct original items).
func (c *Compaction) NumDenseItems() int { return len(c.toOriginal) }

// Original translates a dense itemset back to original item ids. Because
// the remapping is order-preserving, the result is already sorted.
func (c *Compaction) Original(dense itemset.Itemset) itemset.Itemset {
	out := make(itemset.Itemset, len(dense))
	for i, it := range dense {
		out[i] = c.toOriginal[it]
	}
	return out
}

// OriginalAll translates a slice of dense itemsets.
func (c *Compaction) OriginalAll(dense []itemset.Itemset) []itemset.Itemset {
	out := make([]itemset.Itemset, len(dense))
	for i, s := range dense {
		out[i] = c.Original(s)
	}
	return out
}

// WorthCompacting reports whether the declared universe is sparse enough
// (less than half occupied, and large enough to matter) for compaction to
// pay off.
func WorthCompacting(d *Dataset) bool {
	distinct := len(d.PresentItems())
	return d.NumItems() > 10_000 && distinct*2 < d.NumItems()
}
