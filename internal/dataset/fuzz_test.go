package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzBasketParse checks the text parser never panics and that everything
// it accepts round-trips through WriteBasket and back unchanged.
func FuzzBasketParse(f *testing.F) {
	f.Add("1 2 3\n4 5\n")
	f.Add("# comment\n\n7\n")
	f.Add("1,2,3")
	f.Add("999999999999999999999")
	f.Add("-4")
	f.Add("1\t2 ,3\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadBasket(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteBasket(&buf, d); err != nil {
			t.Fatalf("WriteBasket failed on accepted input: %v", err)
		}
		back, err := ReadBasket(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Len() != d.Len() {
			t.Fatalf("round trip lost transactions: %d vs %d", back.Len(), d.Len())
		}
		for i := 0; i < d.Len(); i++ {
			if !back.Transaction(i).Equal(d.Transaction(i)) {
				t.Fatalf("tx %d changed: %v vs %v", i, back.Transaction(i), d.Transaction(i))
			}
		}
	})
}

// FuzzReadBinary checks the binary parser is panic-free on corrupt input.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteBinary(&buf, New([]Transaction{{1, 2, 3}, {4}}))
	f.Add(buf.Bytes())
	f.Add([]byte("PNCR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// accepted: must be internally consistent
		if d.Len() < 0 || d.NumItems() < 0 {
			t.Fatal("negative sizes")
		}
	})
}
