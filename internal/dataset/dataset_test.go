package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pincer/internal/itemset"
)

func newTestDataset() *Dataset {
	return New([]Transaction{
		itemset.New(0, 1, 2),
		itemset.New(1, 2),
		itemset.New(0, 2),
		itemset.New(2),
		itemset.New(0, 1, 2, 3),
	})
}

func TestNewNormalizes(t *testing.T) {
	d := New([]Transaction{{3, 1, 2, 1}})
	if got := d.Transaction(0); !got.Equal(itemset.New(1, 2, 3)) {
		t.Fatalf("transaction not normalized: %v", got)
	}
	if d.NumItems() != 4 {
		t.Fatalf("NumItems = %d, want 4", d.NumItems())
	}
}

func TestEmptyAndSetNumItems(t *testing.T) {
	d := Empty(10)
	if d.NumItems() != 10 || d.Len() != 0 {
		t.Fatalf("Empty: NumItems=%d Len=%d", d.NumItems(), d.Len())
	}
	d.Append(itemset.New(20))
	if d.NumItems() != 21 {
		t.Fatalf("NumItems after Append = %d", d.NumItems())
	}
	d.SetNumItems(5) // refuses to shrink
	if d.NumItems() != 21 {
		t.Fatalf("SetNumItems shrank universe to %d", d.NumItems())
	}
	d.SetNumItems(100)
	if d.NumItems() != 100 {
		t.Fatalf("SetNumItems = %d", d.NumItems())
	}
}

func TestSupport(t *testing.T) {
	d := newTestDataset()
	tests := []struct {
		x    itemset.Itemset
		want int64
	}{
		{nil, 5}, // empty itemset is in every transaction
		{itemset.New(2), 5},
		{itemset.New(0), 3},
		{itemset.New(1), 3},
		{itemset.New(3), 1},
		{itemset.New(0, 1), 2},
		{itemset.New(0, 1, 2), 2},
		{itemset.New(0, 1, 2, 3), 1},
		{itemset.New(4), 0},
		{itemset.New(1, 3), 1},
	}
	for _, tc := range tests {
		if got := d.Support(tc.x); got != tc.want {
			t.Errorf("Support(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
	if got := d.SupportFraction(itemset.New(0)); got != 0.6 {
		t.Errorf("SupportFraction = %v, want 0.6", got)
	}
	if got := Empty(3).SupportFraction(itemset.New(0)); got != 0 {
		t.Errorf("SupportFraction on empty dataset = %v", got)
	}
}

func TestMinCount(t *testing.T) {
	d := New(make([]Transaction, 100))
	tests := []struct {
		sup  float64
		want int64
	}{
		{0.02, 2},
		{0.025, 3},  // ceil
		{0.0201, 3}, // strictly above 2 transactions
		{1.0, 100},
		{0, 1},
		{-1, 1},
		{0.001, 1},
	}
	for _, tc := range tests {
		if got := d.MinCount(tc.sup); got != tc.want {
			t.Errorf("MinCount(%v) = %d, want %d", tc.sup, got, tc.want)
		}
	}
}

func TestItemCountsAndPresentItems(t *testing.T) {
	d := newTestDataset()
	want := []int64{3, 3, 5, 1}
	got := d.ItemCounts()
	if len(got) != len(want) {
		t.Fatalf("ItemCounts len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ItemCounts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if p := d.PresentItems(); !p.Equal(itemset.New(0, 1, 2, 3)) {
		t.Errorf("PresentItems = %v", p)
	}
	d2 := Empty(5)
	d2.Append(itemset.New(1))
	d2.Append(itemset.New(3))
	if p := d2.PresentItems(); !p.Equal(itemset.New(1, 3)) {
		t.Errorf("PresentItems = %v", p)
	}
}

func TestStats(t *testing.T) {
	d := newTestDataset()
	s := d.Stats()
	if s.Transactions != 5 || s.Items != 4 || s.DistinctItems != 4 {
		t.Errorf("Stats = %+v", s)
	}
	if s.MinLength != 1 || s.MaxLength != 4 {
		t.Errorf("lengths = %d..%d", s.MinLength, s.MaxLength)
	}
	if s.AvgLength != 12.0/5.0 {
		t.Errorf("AvgLength = %v", s.AvgLength)
	}
	if s.String() == "" {
		t.Error("empty Stats string")
	}
	if z := Empty(3).Stats(); z.Transactions != 0 || z.AvgLength != 0 {
		t.Errorf("empty Stats = %+v", z)
	}
}

func TestSliceAndPartitions(t *testing.T) {
	d := newTestDataset()
	s := d.Slice(1, 3)
	if s.Len() != 2 || !s.Transaction(0).Equal(itemset.New(1, 2)) {
		t.Fatalf("Slice wrong: len=%d", s.Len())
	}
	parts := d.Partitions(2)
	if len(parts) != 2 || parts[0].Len()+parts[1].Len() != 5 {
		t.Fatalf("Partitions(2): %d parts", len(parts))
	}
	parts = d.Partitions(10) // clamped to |D|
	if len(parts) != 5 {
		t.Fatalf("Partitions(10) = %d parts, want 5", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != 5 {
		t.Fatalf("partitions lose transactions: %d", total)
	}
	if got := d.Partitions(0); len(got) != 1 || got[0].Len() != 5 {
		t.Fatalf("Partitions(0) = %d parts", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Error("Slice out of range did not panic")
		}
	}()
	d.Slice(4, 2)
}

func TestBitsets(t *testing.T) {
	d := newTestDataset()
	bs := d.Bitsets()
	if len(bs) != d.Len() {
		t.Fatalf("Bitsets len = %d", len(bs))
	}
	for i, b := range bs {
		if !b.Items().Equal(d.Transaction(i)) {
			t.Errorf("bitset %d = %v, want %v", i, b.Items(), d.Transaction(i))
		}
	}
}

func TestSortByLength(t *testing.T) {
	d := newTestDataset()
	d.SortByLength()
	for i := 1; i < d.Len(); i++ {
		if len(d.Transaction(i-1)) > len(d.Transaction(i)) {
			t.Fatalf("not sorted by length at %d", i)
		}
	}
}

func TestScannerCountsPasses(t *testing.T) {
	d := newTestDataset()
	sc := NewScanner(d)
	if sc.Passes() != 0 || sc.Len() != 5 || sc.NumItems() != 4 {
		t.Fatalf("fresh scanner: passes=%d len=%d n=%d", sc.Passes(), sc.Len(), sc.NumItems())
	}
	seen := 0
	sc.Scan(func(tx itemset.Itemset, bits *itemset.Bitset) {
		seen++
		if !bits.Items().Equal(tx) {
			t.Errorf("bitset/tx mismatch: %v vs %v", bits.Items(), tx)
		}
	})
	if seen != 5 || sc.Passes() != 1 {
		t.Fatalf("after scan: seen=%d passes=%d", seen, sc.Passes())
	}
	sc.Scan(func(itemset.Itemset, *itemset.Bitset) {})
	if sc.Passes() != 2 {
		t.Fatalf("passes = %d", sc.Passes())
	}
	sc.ResetPasses()
	if sc.Passes() != 0 {
		t.Fatalf("ResetPasses: %d", sc.Passes())
	}
	if sc.Dataset() != d {
		t.Fatal("Dataset accessor")
	}
}

func TestQuickSupportMonotone(t *testing.T) {
	// support(X) ≥ support(Y) whenever X ⊆ Y (anti-monotonicity, the
	// foundation of Observation 1).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r, 40, 12)
		y := randomItemsetOver(r, 12, 5)
		if y.Empty() {
			return true
		}
		x := y[:r.Intn(len(y))+1] // prefix subset
		return d.Support(itemset.Itemset(x).Clone()) >= d.Support(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomItemsetOver(r *rand.Rand, universe, maxLen int) itemset.Itemset {
	n := r.Intn(maxLen + 1)
	items := make([]itemset.Item, n)
	for i := range items {
		items[i] = itemset.Item(r.Intn(universe))
	}
	return itemset.New(items...)
}

func randomDataset(r *rand.Rand, numTx, universe int) *Dataset {
	d := Empty(universe)
	for i := 0; i < numTx; i++ {
		d.Append(randomItemsetOver(r, universe, universe/2))
	}
	return d
}
