package dataset

import (
	"fmt"
	"sort"
)

// Profile summarizes the cheap shape statistics that predict which mining
// engine wins on a dataset — the characteristics Heaton's comparative study
// found to separate Apriori, Eclat, and FP-Growth regimes. Everything here
// is computable in a single pass over the transactions plus one sort of the
// per-item counts, so profiling at submit time costs a small fraction of
// even the fastest mine. The profile is a pure function of the dataset
// bytes: a spool-recovered job that re-parses the same database derives the
// identical profile, which keeps adaptive engine selection deterministic
// across daemon restarts.
type Profile struct {
	// Transactions is |D|.
	Transactions int `json:"transactions"`
	// Universe is the declared item-universe width (max item + 1).
	Universe int `json:"universe"`
	// DistinctItems is the number of items that actually occur.
	DistinctItems int `json:"distinct_items"`
	// AvgTxLen is the mean transaction length.
	AvgTxLen float64 `json:"avg_tx_len"`
	// MaxTxLen is the longest transaction.
	MaxTxLen int `json:"max_tx_len"`
	// Density is AvgTxLen / DistinctItems: the probability that a uniformly
	// chosen occurring item appears in a uniformly chosen transaction. Dense
	// matrices (high values) favor vertical and pattern-tree miners; sparse
	// ones favor level-wise counting.
	Density float64 `json:"density"`
	// Skew is the Gini coefficient of the per-item occurrence counts over
	// the occurring items: 0 when every item is equally common, approaching
	// 1 when a few items dominate. Skewed data compresses well in a
	// frequency-ordered prefix tree (shared prefixes), and concentrates
	// tidset mass on few items.
	Skew float64 `json:"skew"`
}

// Profile computes the dataset's shape profile in one pass plus a sort of
// the per-item counts.
func (d *Dataset) Profile() Profile {
	p := Profile{Transactions: len(d.transactions), Universe: d.numItems}
	if len(d.transactions) == 0 {
		return p
	}
	counts := make([]int64, d.numItems)
	total := 0
	for _, t := range d.transactions {
		total += len(t)
		if len(t) > p.MaxTxLen {
			p.MaxTxLen = len(t)
		}
		for _, it := range t {
			counts[it]++
		}
	}
	p.AvgTxLen = float64(total) / float64(len(d.transactions))
	occ := counts[:0]
	for _, c := range counts {
		if c > 0 {
			occ = append(occ, c)
		}
	}
	p.DistinctItems = len(occ)
	if p.DistinctItems > 0 {
		p.Density = p.AvgTxLen / float64(p.DistinctItems)
		p.Skew = gini(occ)
	}
	return p
}

// gini computes the Gini coefficient of positive values (sorted in place):
// G = (2·Σ i·x_i)/(n·Σ x_i) − (n+1)/n with 1-based ranks i over ascending x.
func gini(xs []int64) float64 {
	n := len(xs)
	if n <= 1 {
		return 0
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	var sum, weighted float64
	for i, x := range xs {
		sum += float64(x)
		weighted += float64(i+1) * float64(x)
	}
	if sum == 0 {
		return 0
	}
	return 2*weighted/(float64(n)*sum) - float64(n+1)/float64(n)
}

func (p Profile) String() string {
	return fmt.Sprintf("|D|=%d N=%d distinct=%d avg|T|=%.2f max|T|=%d density=%.4f skew=%.3f",
		p.Transactions, p.Universe, p.DistinctItems, p.AvgTxLen, p.MaxTxLen, p.Density, p.Skew)
}
