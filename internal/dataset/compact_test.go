package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pincer/internal/itemset"
)

func TestCompactRemapsAndTranslatesBack(t *testing.T) {
	d := Empty(1_000_000)
	d.Append(itemset.New(5, 999_999))
	d.Append(itemset.New(5, 70_000))
	d.Append(itemset.New(70_000))
	c := Compact(d)
	if c.NumDenseItems() != 3 {
		t.Fatalf("dense items = %d", c.NumDenseItems())
	}
	if c.Dataset.NumItems() != 3 {
		t.Fatalf("dense universe = %d", c.Dataset.NumItems())
	}
	// order preserved: 5 -> 0, 70000 -> 1, 999999 -> 2
	if !c.Dataset.Transaction(0).Equal(itemset.New(0, 2)) {
		t.Errorf("tx0 = %v", c.Dataset.Transaction(0))
	}
	if !c.Dataset.Transaction(1).Equal(itemset.New(0, 1)) {
		t.Errorf("tx1 = %v", c.Dataset.Transaction(1))
	}
	// translation round-trips
	if got := c.Original(itemset.New(0, 1, 2)); !got.Equal(itemset.New(5, 70_000, 999_999)) {
		t.Errorf("Original = %v", got)
	}
	all := c.OriginalAll([]itemset.Itemset{itemset.New(1), itemset.New(0, 2)})
	if !all[0].Equal(itemset.New(70_000)) || !all[1].Equal(itemset.New(5, 999_999)) {
		t.Errorf("OriginalAll = %v", all)
	}
}

func TestWorthCompacting(t *testing.T) {
	dense := Empty(100)
	dense.Append(itemset.Range(0, 100))
	if WorthCompacting(dense) {
		t.Error("dense small universe flagged")
	}
	sparse := Empty(1_000_000)
	sparse.Append(itemset.New(1, 999_999))
	if !WorthCompacting(sparse) {
		t.Error("sparse universe not flagged")
	}
}

func TestQuickCompactPreservesSupports(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := Empty(10_000)
		numTx := 3 + r.Intn(20)
		for i := 0; i < numTx; i++ {
			n := 1 + r.Intn(6)
			items := make([]itemset.Item, n)
			for j := range items {
				items[j] = itemset.Item(r.Intn(10_000))
			}
			d.Append(itemset.New(items...))
		}
		c := Compact(d)
		if c.Dataset.Len() != d.Len() {
			return false
		}
		// support of every compacted transaction equals the original's
		for i := 0; i < d.Len(); i++ {
			dense := c.Dataset.Transaction(i)
			if c.Dataset.Support(dense) != d.Support(d.Transaction(i)) {
				return false
			}
			if !c.Original(dense).Equal(d.Transaction(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
