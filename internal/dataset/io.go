package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pincer/internal/itemset"
)

// The basket text format is one transaction per line, items as non-negative
// integers separated by spaces (or tabs or commas). Blank lines and lines
// beginning with '#' are ignored. This is the de-facto format of public
// frequent-itemset mining repositories.

// ReadBasket parses the basket text format.
func ReadBasket(r io.Reader) (*Dataset, error) {
	d := &Dataset{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.FieldsFunc(text, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ','
		})
		if len(fields) == 0 {
			continue // separator-only line: treat as blank (the text format
			// cannot represent empty transactions; use the binary format)
		}
		items := make([]itemset.Item, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad item %q: %w", line, f, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("dataset: line %d: negative item %d", line, v)
			}
			items = append(items, itemset.Item(v))
		}
		d.Append(itemset.New(items...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}
	return d, nil
}

// WriteBasket emits the basket text format.
func WriteBasket(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, t := range d.Transactions() {
		for i, it := range t {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(it))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadBasketFile reads a basket file from disk.
func LoadBasketFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBasket(f)
}

// SaveBasketFile writes a basket file to disk.
func SaveBasketFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBasket(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// binaryMagic identifies the compact binary format: "PNCR" + version byte.
var binaryMagic = [5]byte{'P', 'N', 'C', 'R', 1}

// WriteBinary emits a compact little-endian binary encoding:
//
//	magic[5] numItems:u32 numTx:u32 { len:u32 item:u32* }*
//
// The binary format preserves the declared universe size, which the text
// format cannot.
func WriteBinary(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var u32 [4]byte
	put := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		_, err := bw.Write(u32[:])
		return err
	}
	if err := put(uint32(d.NumItems())); err != nil {
		return err
	}
	if err := put(uint32(d.Len())); err != nil {
		return err
	}
	for _, t := range d.Transactions() {
		if err := put(uint32(len(t))); err != nil {
			return err
		}
		for _, it := range t {
			if err := put(uint32(it)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the format produced by WriteBinary.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("dataset: binary header: %w", err)
	}
	if magic != binaryMagic {
		return nil, errors.New("dataset: not a pincer binary database")
	}
	var u32 [4]byte
	get := func() (uint32, error) {
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	numItems, err := get()
	if err != nil {
		return nil, fmt.Errorf("dataset: binary numItems: %w", err)
	}
	numTx, err := get()
	if err != nil {
		return nil, fmt.Errorf("dataset: binary numTx: %w", err)
	}
	d := Empty(int(numItems))
	for i := uint32(0); i < numTx; i++ {
		n, err := get()
		if err != nil {
			return nil, fmt.Errorf("dataset: binary tx %d: %w", i, err)
		}
		// The declared length is untrusted: grow the slice as items are
		// actually decoded (4 bytes each) so a hostile header cannot force
		// an allocation larger than the input itself.
		items := make([]itemset.Item, 0, min(int(n), 1024))
		for j := uint32(0); j < n; j++ {
			v, err := get()
			if err != nil {
				return nil, fmt.Errorf("dataset: binary tx %d item %d: %w", i, j, err)
			}
			items = append(items, itemset.Item(v))
		}
		d.Append(itemset.New(items...))
	}
	return d, nil
}

// Load reads a database from disk, sniffing the binary magic and falling
// back to the basket text format.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(5)
	if err == nil && [5]byte(head) == binaryMagic {
		return ReadBinary(br)
	}
	return ReadBasket(br)
}
