package dataset

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pincer/internal/itemset"
)

// FileScanner is a Scanner that re-reads a basket file from disk on every
// pass instead of materializing the database in memory. It models the
// paper's cost regime literally — each pass is one sequential read of the
// database — and lets the miners run on databases larger than RAM.
//
// The first pass determines the transaction count and item universe; these
// are cached so Len and NumItems are cheap afterwards. Transactions are
// normalized (sorted, de-duplicated) while streaming. I/O or parse errors
// abort the pass via panic with a *FileScanError, because the Scanner
// interface is error-free by design (an in-memory scan cannot fail);
// callers opening untrusted files should Validate first.
type FileScanner struct {
	path     string
	passes   int
	numTx    int
	numItems int
	scanned  bool
}

// FileScanError wraps an error encountered mid-pass.
type FileScanError struct {
	Path string
	Err  error
}

func (e *FileScanError) Error() string {
	return fmt.Sprintf("dataset: scanning %s: %v", e.Path, e.Err)
}

func (e *FileScanError) Unwrap() error { return e.Err }

// OpenFileScanner validates the basket file with one full pass and returns
// a Scanner over it.
func OpenFileScanner(path string) (*FileScanner, error) {
	fs := &FileScanner{path: path}
	if err := fs.validate(); err != nil {
		return nil, err
	}
	return fs, nil
}

// validate performs the initial pass: syntax check plus size/universe
// discovery. It does not count toward Passes.
func (fs *FileScanner) validate() error {
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if se, ok := r.(*FileScanError); ok {
					err = se
					return
				}
				panic(r)
			}
		}()
		fs.scanFile(func(tx itemset.Itemset, _ *itemset.Bitset) {
			fs.numTx++
			if len(tx) > 0 && int(tx.Last())+1 > fs.numItems {
				fs.numItems = int(tx.Last()) + 1
			}
		})
	}()
	fs.scanned = err == nil
	return err
}

// Scan implements Scanner: one sequential pass over the file.
func (fs *FileScanner) Scan(fn func(tx itemset.Itemset, bits *itemset.Bitset)) {
	fs.passes++
	fs.scanFile(fn)
}

func (fs *FileScanner) scanFile(fn func(tx itemset.Itemset, bits *itemset.Bitset)) {
	f, err := os.Open(fs.path)
	if err != nil {
		panic(&FileScanError{Path: fs.path, Err: err})
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	var bits *itemset.Bitset
	if fs.scanned {
		bits = itemset.NewBitset(fs.numItems)
	} else {
		bits = itemset.NewBitset(0)
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.FieldsFunc(text, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ','
		})
		items := make([]itemset.Item, 0, len(fields))
		for _, fld := range fields {
			v, err := strconv.ParseInt(fld, 10, 32)
			if err != nil || v < 0 {
				panic(&FileScanError{Path: fs.path, Err: fmt.Errorf("line %d: bad item %q", line, fld)})
			}
			items = append(items, itemset.Item(v))
		}
		tx := itemset.New(items...)
		bits.Clear()
		for _, it := range tx {
			bits.Add(it)
		}
		fn(tx, bits)
	}
	if err := sc.Err(); err != nil {
		panic(&FileScanError{Path: fs.path, Err: err})
	}
}

// Len implements Scanner.
func (fs *FileScanner) Len() int { return fs.numTx }

// NumItems implements Scanner.
func (fs *FileScanner) NumItems() int { return fs.numItems }

// Passes implements Scanner.
func (fs *FileScanner) Passes() int { return fs.passes }
