package counting

import (
	"strings"
	"testing"

	"pincer/internal/itemset"
)

// recoverMismatch runs fn expecting a *MismatchError panic and returns it.
func recoverMismatch(t *testing.T, fn func()) *MismatchError {
	t.Helper()
	var me *MismatchError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("no panic")
			}
			var ok bool
			me, ok = r.(*MismatchError)
			if !ok {
				t.Fatalf("panic value %T (%v), want *MismatchError", r, r)
			}
		}()
		fn()
	}()
	return me
}

func TestSumIntoLengthMismatchPanicsTyped(t *testing.T) {
	me := recoverMismatch(t, func() {
		SumInto(make([]int64, 3), make([]int64, 5))
	})
	if me.Op != "SumInto" || me.Want != 3 || me.Got != 5 {
		t.Errorf("MismatchError = %+v, want Op=SumInto Want=3 Got=5", me)
	}
	if !strings.Contains(me.Error(), "SumInto") || !strings.Contains(me.Error(), "3 vs 5") {
		t.Errorf("Error() = %q", me.Error())
	}
}

func TestTriangleMergeMismatchPanicsTyped(t *testing.T) {
	a := NewTriangle(6, itemset.New(0, 1, 2))
	b := NewTriangle(6, itemset.New(0, 1, 2, 3))
	me := recoverMismatch(t, func() { a.Merge(b) })
	if me.Op != "Triangle.Merge" || me.Want != 3 || me.Got != 4 {
		t.Errorf("MismatchError = %+v, want Op=Triangle.Merge Want=3 Got=4", me)
	}
}

func TestSumIntoMatchedLengths(t *testing.T) {
	dst := []int64{1, 2, 3}
	SumInto(dst, []int64{10, 20, 30})
	for i, want := range []int64{11, 22, 33} {
		if dst[i] != want {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], want)
		}
	}
}

func TestTriangleMergeShard(t *testing.T) {
	live := itemset.New(0, 1, 2)
	base := NewTriangle(4, live)
	sh := base.Shard()
	base.Add(itemset.New(0, 1, 2))
	sh.Add(itemset.New(0, 1))
	base.Merge(sh)
	if got := base.Count(0, 1); got != 2 {
		t.Errorf("count(0,1) after merge = %d, want 2", got)
	}
	if got := base.Count(1, 2); got != 1 {
		t.Errorf("count(1,2) after merge = %d, want 1", got)
	}
}
