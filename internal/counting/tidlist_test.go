package counting

import (
	"math/rand"
	"sort"
	"testing"

	"pincer/internal/dataset"
	"pincer/internal/itemset"
)

// refSet is the reference model: a plain map of tids.
type refSet map[int32]bool

func (r refSet) sorted() []int32 {
	out := make([]int32, 0, len(r))
	for t := range r {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func randomTids(rng *rand.Rand, numTx int, density float64) []int32 {
	var out []int32
	for t := 0; t < numTx; t++ {
		if rng.Float64() < density {
			out = append(out, int32(t))
		}
	}
	return out
}

func TestTidSetKernelsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, mode := range []RepMode{RepAuto, RepBitset, RepList} {
		for _, numTx := range []int{0, 1, 63, 64, 65, 200} {
			for trial := 0; trial < 20; trial++ {
				s := NewTidSpace(numTx, mode)
				la := randomTids(rng, numTx, rng.Float64())
				lb := randomTids(rng, numTx, rng.Float64())
				a, b := s.FromList(la), s.FromList(lb)
				ra, rb := refSet{}, refSet{}
				for _, x := range la {
					ra[x] = true
				}
				for _, x := range lb {
					rb[x] = true
				}
				and, diff, or := refSet{}, refSet{}, refSet{}
				for x := range ra {
					if rb[x] {
						and[x] = true
					} else {
						diff[x] = true
					}
					or[x] = true
				}
				for x := range rb {
					or[x] = true
				}
				if got := s.AndCard(&a, &b); got != len(and) {
					t.Fatalf("mode=%v numTx=%d: AndCard=%d want %d", mode, numTx, got, len(and))
				}
				check := func(op string, got *TidSet, want refSet) {
					t.Helper()
					if got.Card() != len(want) {
						t.Fatalf("mode=%v numTx=%d %s: card=%d want %d", mode, numTx, op, got.Card(), len(want))
					}
					gotTids := got.Tids()
					wantTids := want.sorted()
					for i := range gotTids {
						if gotTids[i] != wantTids[i] {
							t.Fatalf("mode=%v numTx=%d %s: tids %v want %v", mode, numTx, op, gotTids, wantTids)
						}
					}
				}
				var dst TidSet
				s.And(&dst, &a, &b)
				check("And", &dst, and)
				s.Diff(&dst, &a, &b)
				check("Diff", &dst, diff)
				s.Or(&dst, &a, &b)
				check("Or", &dst, or)
				s.Copy(&dst, &a)
				check("Copy", &dst, ra)
			}
		}
	}
}

func TestTidSetMixedRepresentations(t *testing.T) {
	// Force one dense and one sparse operand under RepAuto so the mixed
	// kernels run: numTx=256, dense has 200 tids (bits), sparse has 3 (list).
	s := NewTidSpace(256, RepAuto)
	var denseL []int32
	for i := 0; i < 200; i++ {
		denseL = append(denseL, int32(i))
	}
	sparseL := []int32{5, 100, 250}
	dense, sparse := s.FromList(denseL), s.FromList(sparseL)
	if !dense.IsBitset() || sparse.IsBitset() {
		t.Fatalf("representation choice: dense bits=%v sparse bits=%v", dense.IsBitset(), sparse.IsBitset())
	}
	if got := s.AndCard(&dense, &sparse); got != 2 {
		t.Errorf("AndCard = %d, want 2", got)
	}
	var dst TidSet
	s.And(&dst, &dense, &sparse)
	if dst.Card() != 2 || dst.IsBitset() {
		t.Errorf("And: card=%d bits=%v, want 2/list", dst.Card(), dst.IsBitset())
	}
	s.Diff(&dst, &dense, &sparse) // keeps a's (dense) rep
	if dst.Card() != 198 || !dst.IsBitset() {
		t.Errorf("Diff: card=%d bits=%v, want 198/bits", dst.Card(), dst.IsBitset())
	}
	s.Diff(&dst, &sparse, &dense)
	if dst.Card() != 1 || dst.IsBitset() {
		t.Errorf("Diff sparse\\dense: card=%d bits=%v, want 1/list", dst.Card(), dst.IsBitset())
	}
	s.Or(&dst, &sparse, &dense)
	if dst.Card() != 201 || !dst.IsBitset() {
		t.Errorf("Or: card=%d bits=%v, want 201/bits", dst.Card(), dst.IsBitset())
	}
	if got := s.AndCard(&dense, &dense); got != 200 { // both-dense kernel
		t.Errorf("AndCard(dense,dense) = %d, want 200", got)
	}
	if s.Stats.Bitset == 0 || s.Stats.List == 0 || s.Stats.Total != s.Stats.Bitset+s.Stats.List {
		t.Errorf("stats inconsistent: %+v", s.Stats)
	}
	if lbl := s.Stats.Label(); lbl != "mixed" {
		t.Errorf("label = %q, want mixed", lbl)
	}
}

func TestRepModeRoundTrip(t *testing.T) {
	for _, m := range []RepMode{RepAuto, RepBitset, RepList, RepDiffset} {
		got, err := ParseRepMode(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v: got %v, %v", m, got, err)
		}
	}
	if _, err := ParseRepMode("bogus"); err == nil {
		t.Error("ParseRepMode accepted bogus")
	}
	if m, err := ParseRepMode(""); err != nil || m != RepAuto {
		t.Errorf("empty mode: %v, %v", m, err)
	}
}

func randomDataset(rng *rand.Rand) *dataset.Dataset {
	universe := 4 + rng.Intn(10)
	numTx := 5 + rng.Intn(60)
	d := dataset.Empty(universe)
	for i := 0; i < numTx; i++ {
		n := 1 + rng.Intn(universe)
		items := make([]itemset.Item, n)
		for j := range items {
			items[j] = itemset.Item(rng.Intn(universe))
		}
		d.Append(itemset.New(items...))
	}
	return d
}

// randomCandidates draws itemsets of sizes 1..5, deliberately unsorted and
// with mixed lengths (the combined-pass shape).
func randomCandidates(rng *rand.Rand, universe, n int) []itemset.Itemset {
	out := make([]itemset.Itemset, n)
	for i := range out {
		k := 1 + rng.Intn(5)
		items := make([]itemset.Item, k)
		for j := range items {
			items[j] = itemset.Item(rng.Intn(universe))
		}
		out[i] = itemset.New(items...)
	}
	return out
}

func TestTidListCounterMatchesSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		d := randomDataset(rng)
		universe := d.NumItems()
		elems := randomCandidates(rng, universe, 1+rng.Intn(6))
		elems = append(elems, itemset.Itemset{}) // empty element counts |D|
		elemBits := make([]*itemset.Bitset, len(elems))
		for i, e := range elems {
			elemBits[i] = itemset.BitsetOf(universe, e)
		}
		cands := randomCandidates(rng, universe, 2+rng.Intn(30))
		for _, mode := range []RepMode{RepAuto, RepBitset, RepList, RepDiffset} {
			for _, workers := range []int{1, 4} {
				c := NewTidListCounter(d, TidListOptions{Workers: workers, Rep: mode})
				itemCounts, elemCounts := c.CountItems(universe, elems, elemBits)
				for i := range itemCounts {
					want := d.Support(itemset.Itemset{itemset.Item(i)})
					if itemCounts[i] != want {
						t.Fatalf("mode=%v w=%d: item %d count=%d want %d", mode, workers, i, itemCounts[i], want)
					}
				}
				checkElems := func(stage string, got []int64) {
					t.Helper()
					for i, e := range elems {
						if got[i] != d.Support(e) {
							t.Fatalf("mode=%v w=%d %s: elem %v count=%d want %d", mode, workers, stage, e, got[i], d.Support(e))
						}
					}
				}
				checkElems("items", elemCounts)
				live := d.PresentItems()
				tri, elemCounts := c.CountPairs(universe, live, elems, elemBits)
				checkElems("pairs", elemCounts)
				tri.Each(func(x, y itemset.Item, count int64) {
					if want := d.Support(itemset.Itemset{x, y}); count != want {
						t.Fatalf("mode=%v w=%d: pair {%d,%d} count=%d want %d", mode, workers, x, y, count, want)
					}
				})
				candCounts, elemCounts := c.CountCandidates(EngineHashTree, cands, elems, elemBits)
				checkElems("candidates", elemCounts)
				for i, cd := range cands {
					if want := d.Support(cd); candCounts[i] != want {
						t.Fatalf("mode=%v w=%d: candidate %v count=%d want %d", mode, workers, cd, candCounts[i], want)
					}
				}
				// empty candidate list: nil counts, like the scan counter
				nilCounts, elemCounts := c.CountCandidates(EngineHashTree, nil, elems, elemBits)
				if nilCounts != nil {
					t.Fatalf("mode=%v w=%d: empty candidates returned non-nil counts", mode, workers)
				}
				checkElems("tail", elemCounts)
				if st := c.TakeIntersections(); st.Total == 0 {
					t.Fatalf("mode=%v w=%d: no intersections recorded", mode, workers)
				}
				if st := c.TakeIntersections(); st.Total != 0 {
					t.Fatalf("mode=%v w=%d: TakeIntersections did not reset", mode, workers)
				}
			}
		}
	}
}

// TestTidListCounterAllocsSteadyState pins the pooled intersection path:
// once the walker's buffers are warm, counting a pass of candidates must
// stay allocation-free per candidate (only the per-call count slice and sort
// bookkeeping remain, amortized over all candidates).
func TestTidListCounterAllocsSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := dataset.Empty(24)
	for i := 0; i < 400; i++ {
		n := 6 + rng.Intn(8)
		items := make([]itemset.Item, n)
		for j := range items {
			items[j] = itemset.Item(rng.Intn(24))
		}
		d.Append(itemset.New(items...))
	}
	cands := randomCandidates(rng, 24, 256)
	for _, mode := range []RepMode{RepAuto, RepBitset, RepList, RepDiffset} {
		c := NewTidListCounter(d, TidListOptions{Workers: 1, Rep: mode})
		c.CountCandidates(EngineHashTree, cands, nil, nil) // warm the index and pool
		allocs := testing.AllocsPerRun(20, func() {
			c.CountCandidates(EngineHashTree, cands, nil, nil)
		})
		perCandidate := allocs / float64(len(cands))
		if perCandidate > 0.05 {
			t.Errorf("mode=%v: %.2f allocs per pass = %.4f per candidate, want ≤ 0.05", mode, allocs, perCandidate)
		}
	}
}
