package counting

import (
	"fmt"

	"pincer/internal/dataset"
)

// Selection is the execution plan the adaptive policy derives from a
// dataset profile: which mining algorithm to run, how it should count
// supports, and which candidate structure level-wise passes should use.
// The names follow the server's miner/counter vocabulary so a Selection
// maps directly onto a job spec.
type Selection struct {
	// Algorithm is the miner: "pincer", "apriori", "vertical", or "fpmax".
	// The policy never selects "topdown" (its frontier is combinatorial in
	// the universe width and can abort on wide data) or "parallel" (worker
	// fan-out is a deployment decision, not a dataset property).
	Algorithm string `json:"algorithm"`
	// Counter is the support-counting strategy for level-wise algorithms:
	// "" (database scans) or "tidlist" (vertical intersection counting).
	// Meaningless for "vertical" and "fpmax", which never rescan.
	Counter string `json:"counter,omitempty"`
	// Engine is the candidate structure for level-wise passes ≥ 3.
	Engine Engine `json:"-"`
	// Rationale is the one-line explanation recorded in the result doc and
	// trace events: which profile features drove the choice.
	Rationale string `json:"rationale,omitempty"`
}

// Profile-feature thresholds of the selection policy. They were calibrated
// against the rising-density sweep in BENCH_engines.json (make
// bench-engines); see DESIGN.md §12 for the measured crossover.
const (
	// selectDenseFPTree is the density above which the occurrence matrix is
	// dense enough that a frequency-ordered prefix tree collapses most
	// transactions onto shared paths: FP-max territory. The committed sweep
	// puts the fpmax/vertical wall-clock crossover between density 0.21
	// (vertical 2.6× faster) and 0.47 (fpmax 5× faster).
	selectDenseFPTree = 0.30
	// selectDenseVertical is the density above which inverting the dataset
	// into tidsets pays for itself: maximal Eclat territory.
	selectDenseVertical = 0.045
	// selectSkewFPTree is the minimum item-frequency skew for the FP-tree
	// choice: without skew there is no frequency ordering to exploit and
	// the tree degenerates toward one node per item occurrence.
	selectSkewFPTree = 0.20
	// selectWideUniverse marks a universe wide enough that breadth-first
	// candidate generation risks a combinatorial pass-2/3 blowup, making
	// depth-first search the safer default even at low density.
	selectWideUniverse = 4096
)

// SelectEngine picks the execution plan for a dataset from its profile.
// The policy table (first matching row wins):
//
//	profile                              plan               why
//	------------------------------------ ------------------ -------------------------------------------
//	empty dataset or no occurring items  pincer/scan        degenerate; pass 1 answers immediately
//	density ≥ 0.30 and skew ≥ 0.20       fpmax              dense + skewed: prefix tree compresses,
//	                                                        long patterns end level-wise search late
//	density ≥ 0.045 or universe ≥ 4096   vertical           dense enough to invert (or too wide to
//	                                                        enumerate breadth-first): tidset
//	                                                        intersections beat rescans
//	otherwise (sparse, shallow)          pincer/tidlist     short patterns: the two-way search ends in
//	                                                        few levels and tid-lists stay short
//
// The returned plan is a pure function of the profile — the same dataset
// always selects the same plan, which keeps cache keys and spool-recovered
// jobs deterministic. Every plan produces the identical MFS byte for byte
// (pinned by the engine-invariance property test); only the latency
// changes, so a policy miss costs speed, never correctness.
func SelectEngine(p dataset.Profile) Selection {
	sel := Selection{Algorithm: "pincer", Engine: EngineHashTree}
	switch {
	case p.Transactions == 0 || p.DistinctItems == 0:
		sel.Rationale = "degenerate dataset: pass-1 scan answers immediately"
	case p.Density >= selectDenseFPTree && p.Skew >= selectSkewFPTree:
		sel.Algorithm = "fpmax"
		sel.Rationale = fmt.Sprintf(
			"dense skewed data (density %.3f ≥ %g, skew %.2f ≥ %g): frequency-ordered prefix tree compresses shared prefixes",
			p.Density, selectDenseFPTree, p.Skew, selectSkewFPTree)
	case p.Density >= selectDenseVertical:
		sel.Algorithm = "vertical"
		sel.Rationale = fmt.Sprintf(
			"dense data (density %.3f ≥ %g): tidset intersections beat database rescans",
			p.Density, selectDenseVertical)
	case p.Universe >= selectWideUniverse:
		sel.Algorithm = "vertical"
		sel.Rationale = fmt.Sprintf(
			"wide universe (%d ≥ %d items): depth-first search avoids the breadth-first candidate blowup",
			p.Universe, selectWideUniverse)
	default:
		sel.Counter = "tidlist"
		sel.Rationale = fmt.Sprintf(
			"sparse shallow data (density %.3f): two-way pincer search ends in few levels, tid-list counted",
			p.Density)
	}
	return sel
}
