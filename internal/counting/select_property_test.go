package counting_test

// Engine-invariance property: the adaptive selection and every fixed engine
// answer every workload byte-identically — the policy may only ever change
// latency, never the mined result. The corpus is 12 workloads: six
// generated datasets of rising density (the axis the policy keys on) at
// both conformance minimum supports. Runs race-clean under `make race`.

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"pincer/internal/apriori"
	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/fpmax"
	"pincer/internal/mfi"
	"pincer/internal/quest"
	"pincer/internal/vertical"
)

// risingDensity mirrors bench.EngineSweepDatasets: pattern pools shrink and
// transactions lengthen as i grows, sweeping sparse-scattered (many short
// patterns over a wide universe) to dense-concentrated (a handful of long
// patterns over a narrow one) — the axis the selection policy keys on.
func risingDensity(n int) []quest.Params {
	out := make([]quest.Params, n)
	for i := range out {
		items := 600 - 104*i
		if items < 80 {
			items = 80
		}
		patterns := 90 - 16*i
		if patterns < 6 {
			patterns = 6
		}
		out[i] = quest.Params{
			NumTransactions: 400,
			AvgTxLen:        float64(5 + 2*i),
			AvgPatternLen:   float64(2 + i/2),
			NumPatterns:     patterns,
			NumItems:        items,
			Seed:            int64(100 + i),
		}
	}
	return out
}

// renderMFS is the conformance corpus's canonical byte form: sorted
// "items\tsupport" lines.
func renderMFS(res *mfi.Result) []byte {
	lines := make([]string, len(res.MFS))
	for i, s := range res.MFS {
		var b bytes.Buffer
		for j, it := range s {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", it)
		}
		fmt.Fprintf(&b, "\t%d", res.MFSSupports[i])
		lines[i] = b.String()
	}
	sort.Strings(lines)
	var out bytes.Buffer
	for _, l := range lines {
		out.WriteString(l)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// runPlan executes a Selection — the same dispatch the server performs.
func runPlan(d *dataset.Dataset, minsup float64, sel counting.Selection) (*mfi.Result, error) {
	minCount := d.MinCount(minsup)
	switch sel.Algorithm {
	case "pincer":
		opt := core.DefaultOptions()
		opt.Engine = sel.Engine
		opt.KeepFrequent = false
		if sel.Counter == "tidlist" {
			opt.Counter = counting.NewTidListCounter(d, counting.TidListOptions{})
		}
		return core.MineCount(dataset.NewScanner(d), minCount, opt)
	case "apriori":
		opt := apriori.DefaultOptions()
		opt.Engine = sel.Engine
		return apriori.MineCount(dataset.NewScanner(d), minCount, opt)
	case "vertical":
		opt := vertical.DefaultOptions()
		opt.KeepFrequent = false
		res := vertical.MineMaximal(d, minsup, opt)
		return &res.Result, nil
	case "fpmax":
		return &fpmax.MineMaximalCount(d, minCount, fpmax.DefaultOptions()).Result, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q", sel.Algorithm)
}

func TestEngineChoiceResultInvariant(t *testing.T) {
	fixed := []counting.Selection{
		{Algorithm: "pincer", Engine: counting.EngineHashTree},
		{Algorithm: "pincer", Counter: "tidlist", Engine: counting.EngineHashTree},
		{Algorithm: "pincer", Engine: counting.EngineList},
		{Algorithm: "pincer", Engine: counting.EngineTrie},
		{Algorithm: "apriori", Engine: counting.EngineHashTree},
		{Algorithm: "vertical"},
		{Algorithm: "fpmax"},
	}
	selected := map[string]bool{}
	for di, p := range risingDensity(6) {
		d := quest.Generate(p)
		prof := d.Profile()
		auto := counting.SelectEngine(prof)
		selected[auto.Algorithm] = true
		for _, minsup := range []float64{0.05, 0.15} {
			t.Run(fmt.Sprintf("d%d-sup%g", di, minsup), func(t *testing.T) {
				ref, err := runPlan(d, minsup, auto)
				if err != nil {
					t.Fatalf("auto plan %+v: %v", auto, err)
				}
				want := renderMFS(ref)
				for _, sel := range fixed {
					res, err := runPlan(d, minsup, sel)
					if err != nil {
						t.Fatalf("plan %+v: %v", sel, err)
					}
					if got := renderMFS(res); !bytes.Equal(got, want) {
						t.Errorf("%s/%s/%s differs from auto (%s)\n--- got ---\n%s--- want ---\n%s",
							sel.Algorithm, sel.Counter, sel.Engine, auto.Algorithm, got, want)
					}
				}
			})
		}
	}
	// The sweep must actually exercise the policy: at least two distinct
	// plans across the density ladder, otherwise the test pins nothing
	// about selection.
	if len(selected) < 2 {
		t.Errorf("rising-density corpus selected only %v; policy thresholds never fired", selected)
	}
}
