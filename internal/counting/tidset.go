package counting

import (
	"fmt"
	"math/bits"
	"strings"
)

// This file provides the vertical-layout counting kernels shared by the
// TidListCounter (the pincer loop's vertical PassCounter) and by
// internal/vertical's Eclat miners: tidsets in two interchangeable
// representations — a dense word array ("bitset", one bit per transaction)
// and a sorted []int32 list — with intersection, difference, and union
// kernels that never allocate when the destination's buffers are large
// enough, plus cardinality-only variants that materialize nothing at all.
//
// Representation rule (RepAuto): a tidset of cardinality c over |D|
// transactions is stored dense when c ≥ |D|/32 — the break-even point where
// one word of 64 presence bits (8 bytes) costs less than the ≥ 2 list
// entries (8 bytes) it replaces, and word-wide AND/popcount beats the
// branchy list merge. Kernel outputs stay dense only when both operands are
// dense; any list operand makes the output a list, so representations are
// monotone along an intersection chain (dense → list, never back).

// RepMode selects the tidset representation policy for vertical counting.
type RepMode int

const (
	// RepAuto chooses per tidset by density (the c ≥ |D|/32 rule) and
	// switches to diffsets adaptively when the delta is the smaller object.
	RepAuto RepMode = iota
	// RepBitset forces the dense word-array representation everywhere.
	RepBitset
	// RepList forces the sorted []int32 representation everywhere.
	RepList
	// RepDiffset keeps dEclat diffsets (deltas against the nearest
	// materialized ancestor) at every level of a prefix walk; base tidsets
	// still choose density like RepAuto.
	RepDiffset
)

// String implements fmt.Stringer.
func (m RepMode) String() string {
	switch m {
	case RepAuto:
		return "auto"
	case RepBitset:
		return "bitset"
	case RepList:
		return "list"
	case RepDiffset:
		return "diffset"
	default:
		return fmt.Sprintf("RepMode(%d)", int(m))
	}
}

// ParseRepMode parses the String form.
func ParseRepMode(s string) (RepMode, error) {
	switch s {
	case "auto", "":
		return RepAuto, nil
	case "bitset", "bits":
		return RepBitset, nil
	case "list", "tids":
		return RepList, nil
	case "diffset", "diff":
		return RepDiffset, nil
	}
	return 0, fmt.Errorf("counting: unknown tidset representation %q (want auto, bitset, list, or diffset)", s)
}

// ParseCounterSpec parses the CLI/server counter selector: "" or "scan"
// selects database-scan counting (tidlist=false), "tidlist" selects the
// vertical tid-list counter with the automatic representation, and
// "tidlist:<rep>" forces a representation ("tidlist:bitset",
// "tidlist:list", "tidlist:diffset", "tidlist:auto").
func ParseCounterSpec(s string) (tidlist bool, rep RepMode, err error) {
	switch {
	case s == "" || s == "scan":
		return false, RepAuto, nil
	case s == "tidlist":
		return true, RepAuto, nil
	case strings.HasPrefix(s, "tidlist:"):
		rep, err := ParseRepMode(strings.TrimPrefix(s, "tidlist:"))
		if err != nil {
			return false, 0, err
		}
		return true, rep, nil
	}
	return false, 0, fmt.Errorf("counting: unknown counter %q (want scan or tidlist[:representation])", s)
}

// IntersectionStats counts vertical kernel operations by representation —
// the vertical analogue of "transactions scanned". Total is the number of
// kernel operations (intersection, difference, union, or cardinality-only);
// Bitset/List split them by whether both operands were dense; Diffset counts
// supports derived via a diffset delta rather than a materialized tidset.
type IntersectionStats struct {
	Total   int64
	Bitset  int64
	List    int64
	Diffset int64
}

// Add accumulates o into s.
func (s *IntersectionStats) Add(o IntersectionStats) {
	s.Total += o.Total
	s.Bitset += o.Bitset
	s.List += o.List
	s.Diffset += o.Diffset
}

// Label names the representation mix actually used: "bitset", "list", or
// "mixed", with a "+diffset" suffix when any support came from a delta.
// Empty when no kernel ran.
func (s IntersectionStats) Label() string {
	var base string
	switch {
	case s.Total == 0:
		return ""
	case s.List == 0:
		base = "bitset"
	case s.Bitset == 0:
		base = "list"
	default:
		base = "mixed"
	}
	if s.Diffset > 0 {
		base += "+diffset"
	}
	return base
}

// TidSet is one tidset: the transactions containing some itemset, in exactly
// one of the two representations. The zero value is a valid empty set (list
// representation).
type TidSet struct {
	bits []uint64 // dense: bit t set ⇔ transaction t present (nil when list)
	list []int32  // sorted transaction indices (meaningful when bits is nil)
	card int
}

// Card returns the cardinality — the support of the itemset the set stands
// for.
func (t *TidSet) Card() int { return t.card }

// IsBitset reports the representation.
func (t *TidSet) IsBitset() bool { return t.bits != nil }

// Tids materializes the members as a sorted slice (test/debug helper; the
// mining paths never call it).
func (t *TidSet) Tids() []int32 {
	if t.bits == nil {
		return append([]int32(nil), t.list...)
	}
	out := make([]int32, 0, t.card)
	for wi, w := range t.bits {
		for w != 0 {
			out = append(out, int32(wi*64+bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}

// TidSpace holds the per-database parameters of the kernels — transaction
// count, word width, representation policy — and accumulates the operation
// statistics. It is not safe for concurrent use; parallel counters give each
// worker a private space and merge the stats at the pass barrier.
type TidSpace struct {
	NumTx int
	words int
	Mode  RepMode
	Stats IntersectionStats
}

// NewTidSpace builds a space for a database of numTx transactions.
func NewTidSpace(numTx int, mode RepMode) *TidSpace {
	return &TidSpace{NumTx: numTx, words: (numTx + 63) / 64, Mode: mode}
}

// useBits decides the representation of a base tidset of the given
// cardinality under the space's policy.
func (s *TidSpace) useBits(card int) bool {
	switch s.Mode {
	case RepBitset:
		return true
	case RepList:
		return false
	default:
		return s.NumTx > 0 && card*32 >= s.NumTx
	}
}

// FromList builds a TidSet from a sorted, duplicate-free tid list, choosing
// the representation by policy. The list is retained when the list
// representation is chosen.
func (s *TidSpace) FromList(list []int32) TidSet {
	if !s.useBits(len(list)) {
		return TidSet{list: list, card: len(list)}
	}
	w := make([]uint64, s.words)
	for _, t := range list {
		w[t>>6] |= 1 << (uint(t) & 63)
	}
	return TidSet{bits: w, card: len(list)}
}

// note records one kernel operation on the pair of representations.
func (s *TidSpace) note(a, b *TidSet) {
	s.Stats.Total++
	if a.bits != nil && b.bits != nil {
		s.Stats.Bitset++
	} else {
		s.Stats.List++
	}
}

// AndCard returns |a ∩ b| without materializing the intersection — the
// support kernel for the last item of a candidate, where the intersection
// itself is never needed again.
func (s *TidSpace) AndCard(a, b *TidSet) int {
	s.note(a, b)
	switch {
	case a.bits != nil && b.bits != nil:
		n := 0
		for i, w := range a.bits {
			n += bits.OnesCount64(w & b.bits[i])
		}
		return n
	case a.bits != nil:
		return countListInBits(b.list, a.bits)
	case b.bits != nil:
		return countListInBits(a.list, b.bits)
	default:
		return countListList(a.list, b.list)
	}
}

// And stores a ∩ b into dst, reusing dst's buffers. dst must not alias a or
// b. The output is dense only when both operands are dense.
func (s *TidSpace) And(dst *TidSet, a, b *TidSet) {
	s.note(a, b)
	if a.bits != nil && b.bits != nil {
		w := s.ensureWords(dst)
		card := 0
		for i := range w {
			v := a.bits[i] & b.bits[i]
			w[i] = v
			card += bits.OnesCount64(v)
		}
		dst.card = card
		return
	}
	out := ensureList(dst)
	switch {
	case a.bits != nil:
		out = appendListInBits(out, b.list, a.bits)
	case b.bits != nil:
		out = appendListInBits(out, a.list, b.bits)
	default:
		out = appendAndListList(out, a.list, b.list)
	}
	dst.list, dst.card = out, len(out)
}

// Diff stores a \ b into dst, reusing dst's buffers; the output keeps a's
// representation. dst must not alias a or b. This is the dEclat kernel:
// d(P ∪ {f,g}) = t(P∪{f}) \ t(P∪{g}) on the tidset→diffset switch and
// d(P ∪ {e,f}) = d(P∪{f}) \ d(P∪{e}) thereafter.
func (s *TidSpace) Diff(dst *TidSet, a, b *TidSet) {
	s.note(a, b)
	if a.bits != nil {
		w := s.ensureWords(dst)
		card := 0
		if b.bits != nil {
			for i := range w {
				v := a.bits[i] &^ b.bits[i]
				w[i] = v
				card += bits.OnesCount64(v)
			}
		} else {
			copy(w, a.bits)
			card = a.card
			for _, t := range b.list {
				mask := uint64(1) << (uint(t) & 63)
				if w[t>>6]&mask != 0 {
					w[t>>6] &^= mask
					card--
				}
			}
		}
		dst.card = card
		return
	}
	out := ensureList(dst)
	if b.bits != nil {
		for _, t := range a.list {
			if b.bits[t>>6]&(1<<(uint(t)&63)) == 0 {
				out = append(out, t)
			}
		}
	} else {
		out = appendDiffListList(out, a.list, b.list)
	}
	dst.list, dst.card = out, len(out)
}

// Or stores a ∪ b into dst, reusing dst's buffers — the diffset
// accumulation kernel (a level's delta is the union of the per-step deltas
// below its anchor). dst must not alias a or b. The output is dense when
// either operand is dense.
func (s *TidSpace) Or(dst *TidSet, a, b *TidSet) {
	s.note(a, b)
	if a.bits != nil || b.bits != nil {
		dense, other := a, b
		if dense.bits == nil {
			dense, other = b, a
		}
		w := s.ensureWords(dst)
		if other.bits != nil {
			card := 0
			for i := range w {
				v := dense.bits[i] | other.bits[i]
				w[i] = v
				card += bits.OnesCount64(v)
			}
			dst.card = card
			return
		}
		copy(w, dense.bits)
		card := dense.card
		for _, t := range other.list {
			mask := uint64(1) << (uint(t) & 63)
			if w[t>>6]&mask == 0 {
				w[t>>6] |= mask
				card++
			}
		}
		dst.card = card
		return
	}
	out := ensureList(dst)
	out = appendOrListList(out, a.list, b.list)
	dst.list, dst.card = out, len(out)
}

// Copy stores a into dst, reusing dst's buffers.
func (s *TidSpace) Copy(dst *TidSet, a *TidSet) {
	if a.bits != nil {
		w := s.ensureWords(dst)
		copy(w, a.bits)
		dst.card = a.card
		return
	}
	out := ensureList(dst)
	dst.list = append(out, a.list...)
	dst.card = a.card
}

// ensureWords switches dst to the dense representation, reusing its word
// buffer when large enough.
func (s *TidSpace) ensureWords(dst *TidSet) []uint64 {
	if cap(dst.bits) >= s.words {
		dst.bits = dst.bits[:s.words]
	} else {
		dst.bits = make([]uint64, s.words)
	}
	return dst.bits
}

// ensureList switches dst to the list representation, keeping its backing
// array.
func ensureList(dst *TidSet) []int32 {
	dst.bits = nil
	return dst.list[:0]
}

func countListInBits(list []int32, w []uint64) int {
	n := 0
	for _, t := range list {
		if w[t>>6]&(1<<(uint(t)&63)) != 0 {
			n++
		}
	}
	return n
}

func appendListInBits(out, list []int32, w []uint64) []int32 {
	for _, t := range list {
		if w[t>>6]&(1<<(uint(t)&63)) != 0 {
			out = append(out, t)
		}
	}
	return out
}

func countListList(a, b []int32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func appendAndListList(out, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func appendDiffListList(out, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

func appendOrListList(out, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
