// Package counting provides support-counting engines for candidate itemsets.
//
// The paper (§4.1.1) counts pass 1 with a one-dimensional array, pass 2 with
// a two-dimensional (triangular) array — both following Özden et al. — and
// later passes with a linked list of candidates scanned per transaction.
// This package implements all three, plus the hash tree of Agrawal &
// Srikant and a prefix trie, as interchangeable engines. Every engine
// produces identical counts (verified by cross-engine property tests); they
// differ only in speed, so the choice never affects the paper's candidate
// and pass metrics.
package counting

import (
	"fmt"

	"pincer/internal/itemset"
)

// Engine selects a candidate-counting implementation for passes ≥ 3.
type Engine int

const (
	// EngineList scans every candidate per transaction — the paper's
	// linked-list structure (§4.1.1), kept as the faithful baseline.
	EngineList Engine = iota
	// EngineHashTree is the hash tree of [AS94]; the default.
	EngineHashTree
	// EngineTrie is a prefix trie keyed by item.
	EngineTrie
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineList:
		return "list"
	case EngineHashTree:
		return "hashtree"
	case EngineTrie:
		return "trie"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine parses the String form.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "list":
		return EngineList, nil
	case "hashtree", "hash-tree", "hash":
		return EngineHashTree, nil
	case "trie":
		return EngineTrie, nil
	}
	return 0, fmt.Errorf("counting: unknown engine %q (want list, hashtree, or trie)", s)
}

// Counter accumulates, over one database pass, the support counts of a fixed
// candidate list supplied at construction. Add is called once per
// transaction; Counts returns the totals parallel to the candidate list.
type Counter interface {
	// Add registers one transaction. Transactions are sorted itemsets.
	Add(tx itemset.Itemset)
	// Counts returns the support counts, indexed like the candidate slice
	// the counter was built from.
	Counts() []int64
	// NumCandidates returns the number of candidates being counted.
	NumCandidates() int
}

// NewCounter builds a Counter of the chosen engine for the candidate list.
// The candidates slice is retained; it must not be mutated during counting.
func NewCounter(e Engine, candidates []itemset.Itemset) Counter {
	switch e {
	case EngineList:
		return NewList(candidates)
	case EngineHashTree:
		return NewHashTree(candidates)
	case EngineTrie:
		return NewTrie(candidates)
	default:
		panic(fmt.Sprintf("counting: unknown engine %d", int(e)))
	}
}

// List is the paper-faithful engine: a flat list of candidates, each tested
// for containment in every transaction.
type List struct {
	candidates []itemset.Itemset
	counts     []int64
}

// NewList builds a List counter.
func NewList(candidates []itemset.Itemset) *List {
	return &List{candidates: candidates, counts: make([]int64, len(candidates))}
}

// Add implements Counter.
func (l *List) Add(tx itemset.Itemset) {
	for i, c := range l.candidates {
		if c.IsSubsetOf(tx) {
			l.counts[i]++
		}
	}
}

// Counts implements Counter.
func (l *List) Counts() []int64 { return l.counts }

// NumCandidates implements Counter.
func (l *List) NumCandidates() int { return len(l.candidates) }

// ItemArray is the pass-1 engine: one counter per item of the universe.
type ItemArray struct {
	counts []int64
}

// NewItemArray builds an ItemArray for a universe of n items.
func NewItemArray(n int) *ItemArray {
	return &ItemArray{counts: make([]int64, n)}
}

// Add registers one transaction.
func (a *ItemArray) Add(tx itemset.Itemset) {
	for _, it := range tx {
		a.counts[it]++
	}
}

// Count returns the support count of item i.
func (a *ItemArray) Count(i itemset.Item) int64 { return a.counts[i] }

// Counts returns all per-item counts.
func (a *ItemArray) Counts() []int64 { return a.counts }

// Merge adds o's counts into a (count-distribution merge of per-partition
// pass-1 arrays). Both arrays must cover the same universe.
func (a *ItemArray) Merge(o *ItemArray) { SumInto(a.counts, o.counts) }

// Triangle is the pass-2 engine: a triangular matrix holding a counter for
// every unordered pair of "live" items (the frequent 1-itemsets). No
// candidate generation is needed for pass 2 (§4.1.1): all pairs of frequent
// items are counted implicitly.
type Triangle struct {
	index  []int32 // item -> dense index among live items, -1 if not live
	items  itemset.Itemset
	counts []int64 // row-major upper triangle
	n      int
}

// NewTriangle builds a Triangle over the given live items (sorted).
func NewTriangle(universe int, live itemset.Itemset) *Triangle {
	t := &Triangle{
		index: make([]int32, universe),
		items: live.Clone(),
		n:     len(live),
	}
	for i := range t.index {
		t.index[i] = -1
	}
	for i, it := range live {
		t.index[it] = int32(i)
	}
	t.counts = make([]int64, t.n*(t.n-1)/2)
	return t
}

// cell maps dense indices i<j to the flat triangle offset.
func (t *Triangle) cell(i, j int32) int {
	// offset of row i = i*(2n-i-1)/2
	return int(i)*(2*t.n-int(i)-1)/2 + int(j-i) - 1
}

// Add registers one transaction: every pair of live items it contains.
func (t *Triangle) Add(tx itemset.Itemset) {
	// project onto live items first
	var live []int32
	for _, it := range tx {
		if int(it) < len(t.index) && t.index[it] >= 0 {
			live = append(live, t.index[it])
		}
	}
	for a := 0; a < len(live); a++ {
		for b := a + 1; b < len(live); b++ {
			t.counts[t.cell(live[a], live[b])]++
		}
	}
}

// AddCount adds c to the pair {x, y}'s counter directly — the write path of
// counters that compute a pair's whole support at once (tid-list
// intersection) instead of accumulating it transaction by transaction. Both
// items must be live; non-live pairs are ignored.
func (t *Triangle) AddCount(x, y itemset.Item, c int64) {
	if int(x) >= len(t.index) || int(y) >= len(t.index) {
		return
	}
	i, j := t.index[x], t.index[y]
	if i < 0 || j < 0 || i == j {
		return
	}
	if i > j {
		i, j = j, i
	}
	t.counts[t.cell(i, j)] += c
}

// Count returns the support count of the pair {x, y}. Both items must be
// live; it returns 0 for non-live items.
func (t *Triangle) Count(x, y itemset.Item) int64 {
	if int(x) >= len(t.index) || int(y) >= len(t.index) {
		return 0
	}
	i, j := t.index[x], t.index[y]
	if i < 0 || j < 0 || i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	return t.counts[t.cell(i, j)]
}

// Each calls f for every pair with its count, pairs in lexicographic order.
func (t *Triangle) Each(f func(x, y itemset.Item, count int64)) {
	for i := 0; i < t.n; i++ {
		for j := i + 1; j < t.n; j++ {
			f(t.items[i], t.items[j], t.counts[t.cell(int32(i), int32(j))])
		}
	}
}

// NumPairs returns the number of implicit pair candidates.
func (t *Triangle) NumPairs() int { return len(t.counts) }

// Shard returns a Triangle sharing t's live-item index — immutable once
// built — with a private count array, so concurrent Adds on distinct shards
// touch no common memory. Merge the shards back with Merge.
func (t *Triangle) Shard() *Triangle {
	return &Triangle{index: t.index, items: t.items, counts: make([]int64, len(t.counts)), n: t.n}
}

// Merge adds o's counts into t. o must be a Shard of t (or a Triangle over
// the same live items); merging incompatible triangles raises a
// *MismatchError panic, which the mining boundary converts into a returned
// error (see mfi.RecoverMiningError).
func (t *Triangle) Merge(o *Triangle) {
	if t.n != o.n {
		panic(&MismatchError{Op: "Triangle.Merge", Want: t.n, Got: o.n})
	}
	SumInto(t.counts, o.counts)
}

// Snapshot returns copies of the triangle's universe size, live items, and
// flat count array — everything RestoreTriangle needs to rebuild it. Used
// by checkpointing: the pair triangle backs the 2-itemset support resolver
// for the rest of the run, so it must survive a restart.
func (t *Triangle) Snapshot() (universe int, live itemset.Itemset, counts []int64) {
	counts = make([]int64, len(t.counts))
	copy(counts, t.counts)
	return len(t.index), t.items.Clone(), counts
}

// RestoreTriangle rebuilds a Triangle from a Snapshot. It panics with a
// *MismatchError if counts does not have the triangle size implied by live.
func RestoreTriangle(universe int, live itemset.Itemset, counts []int64) *Triangle {
	t := NewTriangle(universe, live)
	if len(t.counts) != len(counts) {
		panic(&MismatchError{Op: "RestoreTriangle", Want: len(t.counts), Got: len(counts)})
	}
	copy(t.counts, counts)
	return t
}

// MismatchError reports a merge of structurally incompatible counters:
// count arrays of different lengths (SumInto) or triangles over different
// live sets (Triangle.Merge). These are programmer errors on the parallel
// merge path; they are raised as a typed panic so the mining boundary can
// convert them into a returned error instead of crashing the process.
type MismatchError struct {
	Op        string // the merge operation, e.g. "SumInto"
	Want, Got int    // the mismatched sizes
}

// Error implements error.
func (e *MismatchError) Error() string {
	return fmt.Sprintf("counting: %s merge mismatch: %d vs %d", e.Op, e.Want, e.Got)
}
