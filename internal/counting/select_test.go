package counting

import (
	"strings"
	"testing"

	"pincer/internal/dataset"
)

// TestSelectEnginePolicy pins the policy table row by row on synthetic
// profiles sitting clearly inside each regime.
func TestSelectEnginePolicy(t *testing.T) {
	cases := []struct {
		name     string
		p        dataset.Profile
		algo     string
		counter  string
		wantWord string // substring the rationale must carry
	}{
		{
			name:     "empty",
			p:        dataset.Profile{},
			algo:     "pincer",
			wantWord: "degenerate",
		},
		{
			name:     "no-occurring-items",
			p:        dataset.Profile{Transactions: 10, Universe: 50},
			algo:     "pincer",
			wantWord: "degenerate",
		},
		{
			name:     "dense-skewed",
			p:        dataset.Profile{Transactions: 1000, Universe: 40, DistinctItems: 40, AvgTxLen: 12, Density: 0.3, Skew: 0.4},
			algo:     "fpmax",
			wantWord: "prefix tree",
		},
		{
			name:     "dense-unskewed",
			p:        dataset.Profile{Transactions: 1000, Universe: 40, DistinctItems: 40, AvgTxLen: 12, Density: 0.3, Skew: 0.05},
			algo:     "vertical",
			wantWord: "tidset",
		},
		{
			name:     "moderately-dense",
			p:        dataset.Profile{Transactions: 1000, Universe: 200, DistinctItems: 200, AvgTxLen: 20, Density: 0.1, Skew: 0.3},
			algo:     "vertical",
			wantWord: "tidset",
		},
		{
			name:     "sparse-wide-universe",
			p:        dataset.Profile{Transactions: 1000, Universe: 10000, DistinctItems: 9000, AvgTxLen: 10, Density: 0.0011, Skew: 0.2},
			algo:     "vertical",
			wantWord: "wide universe",
		},
		{
			name:     "sparse-shallow",
			p:        dataset.Profile{Transactions: 1000, Universe: 500, DistinctItems: 400, AvgTxLen: 4, Density: 0.01, Skew: 0.2},
			algo:     "pincer",
			counter:  "tidlist",
			wantWord: "sparse",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sel := SelectEngine(tc.p)
			if sel.Algorithm != tc.algo {
				t.Errorf("algorithm = %q, want %q (rationale: %s)", sel.Algorithm, tc.algo, sel.Rationale)
			}
			if sel.Counter != tc.counter {
				t.Errorf("counter = %q, want %q", sel.Counter, tc.counter)
			}
			if sel.Engine != EngineHashTree {
				t.Errorf("engine = %v, want hashtree", sel.Engine)
			}
			if !strings.Contains(sel.Rationale, tc.wantWord) {
				t.Errorf("rationale %q lacks %q", sel.Rationale, tc.wantWord)
			}
		})
	}
}

// TestSelectEngineDeterministic: the plan is a pure function of the profile.
func TestSelectEngineDeterministic(t *testing.T) {
	p := dataset.Profile{Transactions: 500, Universe: 60, DistinctItems: 55, AvgTxLen: 9, Density: 0.16, Skew: 0.33}
	a, b := SelectEngine(p), SelectEngine(p)
	if a != b {
		t.Fatalf("selection not deterministic: %+v vs %+v", a, b)
	}
}
