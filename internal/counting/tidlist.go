package counting

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"pincer/internal/dataset"
	"pincer/internal/itemset"
)

// TidListOptions configures a TidListCounter.
type TidListOptions struct {
	// Workers is the number of counting goroutines per pass (≤ 1:
	// sequential). Work is split into contiguous chunks of the candidate /
	// element / pair-row space, so workers write disjoint count slots and no
	// merge step is needed.
	Workers int
	// Rep selects the tidset representation policy (default RepAuto).
	Rep RepMode
}

// TidListCounter is a vertical PassCounter for the pincer loop: instead of
// re-scanning the database each pass, it inverts the database once — on
// first use — into per-item tidsets and answers every later pass by
// intersecting them. A candidate {a,b,c,d} costs |t(abc) ∩ t(d)| computed
// along a shared prefix stack, so a sorted candidate list reuses each prefix
// intersection across all candidates sharing it; the final item is always a
// cardinality-only kernel, so no output tidset is materialized for it.
//
// The counter is observationally equivalent to a sequential scan: counts are
// exact and independent of worker count and representation, so the miner's
// every decision — and its per-pass statistics — are unchanged. Only where
// the counts come from differs, which is the point: the miner still charges
// one "pass" per counting call, but only the first call reads the database.
//
// It implements core.PassCounter, core.ContextBinder, core.WorkerCounted,
// and core.IntersectionReporter structurally.
type TidListCounter struct {
	d   *dataset.Dataset
	opt TidListOptions

	ctx        context.Context
	checkEvery int

	once  sync.Once
	numTx int
	items []TidSet

	mu    sync.Mutex
	stats IntersectionStats

	pool sync.Pool
}

// NewTidListCounter builds a vertical counter over d. The per-item index is
// built lazily on the first counting call (a resumed run may never make the
// pass-1 call), with the representation of each item's tidset chosen by
// opt.Rep.
func NewTidListCounter(d *dataset.Dataset, opt TidListOptions) *TidListCounter {
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	return &TidListCounter{d: d, opt: opt}
}

// Workers implements core.WorkerCounted.
func (c *TidListCounter) Workers() int { return c.opt.Workers }

// BindContext implements core.ContextBinder: each worker checks the context
// every checkEvery kernel operations (the vertical analogue of "every N
// transactions") and aborts the pass when it is cancelled.
func (c *TidListCounter) BindContext(ctx context.Context, checkEvery int) {
	c.ctx = ctx
	c.checkEvery = checkEvery
}

// TakeIntersections implements core.IntersectionReporter: it returns the
// kernel-operation statistics accumulated since the last take and resets
// them, so each pass's trace event carries that pass's figures alone.
func (c *TidListCounter) TakeIntersections() IntersectionStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	c.stats = IntersectionStats{}
	return st
}

// ensureIndex inverts the database into per-item tidsets, once.
func (c *TidListCounter) ensureIndex() {
	c.once.Do(func() {
		c.numTx = c.d.Len()
		n := c.d.NumItems()
		counts := c.d.ItemCounts()
		lists := make([][]int32, n)
		for i, cnt := range counts {
			if cnt > 0 {
				lists[i] = make([]int32, 0, cnt)
			}
		}
		for ti, tx := range c.d.Transactions() {
			for _, it := range tx {
				lists[it] = append(lists[it], int32(ti))
			}
		}
		space := NewTidSpace(c.numTx, c.opt.Rep)
		c.items = make([]TidSet, n)
		for i := range lists {
			c.items[i] = space.FromList(lists[i])
		}
	})
}

// emptyTidSet answers lookups of items outside the indexed universe.
var emptyTidSet TidSet

// item returns item x's tidset.
func (c *TidListCounter) item(x itemset.Item) *TidSet {
	if int(x) < len(c.items) {
		return &c.items[int(x)]
	}
	return &emptyTidSet
}

// CountItems implements the pass-1 shape: item supports are the tidset
// cardinalities, free once the index exists.
func (c *TidListCounter) CountItems(numItems int, elems []itemset.Itemset, elemBits []*itemset.Bitset) ([]int64, []int64) {
	c.ensureIndex()
	itemCounts := make([]int64, numItems)
	for i := range itemCounts {
		if i < len(c.items) {
			itemCounts[i] = int64(c.items[i].card)
		}
	}
	return itemCounts, c.countElems(elems)
}

// CountPairs implements the pass-2 shape: every live pair is one
// cardinality-only intersection. Workers stride the triangle's rows (row i
// has n−1−i cells, so striding balances the skew) and write disjoint cells.
func (c *TidListCounter) CountPairs(numItems int, live itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) (*Triangle, []int64) {
	c.ensureIndex()
	tri := NewTriangle(numItems, live)
	n := len(live)
	w := c.opt.Workers
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	c.fanOut(w, func(wi int) {
		walker := c.getWalker()
		defer c.putWalker(walker)
		guard := c.guard()
		for i := wi; i < n; i += w {
			a := c.item(live[i])
			for j := i + 1; j < n; j++ {
				guard.tick()
				tri.AddCount(live[i], live[j], int64(walker.space.AndCard(a, c.item(live[j]))))
			}
		}
	})
	return tri, c.countElems(elems)
}

// CountCandidates implements the pass ≥ 3 shape. The engine argument is
// irrelevant to vertical counting (there is no per-transaction candidate
// structure) and is ignored. Candidates are processed in lexicographic
// order so the prefix stack is shared maximally; the counts are written
// back through the sort permutation, so the returned slice is positional
// like every other PassCounter's.
func (c *TidListCounter) CountCandidates(engine Engine, candidates []itemset.Itemset, elems []itemset.Itemset, elemBits []*itemset.Bitset) ([]int64, []int64) {
	c.ensureIndex()
	var candCounts []int64
	if len(candidates) > 0 {
		candCounts = make([]int64, len(candidates))
		order := sortedOrder(candidates)
		c.inChunks(len(order), func(lo, hi int) {
			w := c.getWalker()
			defer c.putWalker(w)
			guard := c.guard()
			for _, pos := range order[lo:hi] {
				guard.tick()
				candCounts[pos] = w.countCandidate(c, candidates[pos])
			}
		})
	}
	return candCounts, c.countElems(elems)
}

// countElems counts the MFCS elements by chain-intersecting their member
// items' tidsets, starting from the smallest. An element containing an item
// of zero support — the common fate of the initial full-universe element —
// is classified with no kernel work at all.
func (c *TidListCounter) countElems(elems []itemset.Itemset) []int64 {
	counts := make([]int64, len(elems))
	if len(elems) == 0 {
		return counts
	}
	c.inChunks(len(elems), func(lo, hi int) {
		w := c.getWalker()
		defer c.putWalker(w)
		guard := c.guard()
		for i := lo; i < hi; i++ {
			guard.tick()
			counts[i] = w.countElem(c, elems[i])
		}
	})
	return counts
}

// inChunks splits [0, n) into contiguous per-worker chunks and runs fn on
// each; with one worker it runs inline, spawning nothing.
func (c *TidListCounter) inChunks(n int, fn func(lo, hi int)) {
	w := c.opt.Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	c.fanOut(w, func(wi int) {
		fn(wi*n/w, (wi+1)*n/w)
	})
}

// fanOut runs fn(0..w-1) on w goroutines, re-raising the first captured
// panic on the calling (mining) goroutine: a Canceled sentinel unwinds into
// the miner's partial-result recovery, anything else is a programmer error
// and propagates exactly as it would from a sequential counter.
func (c *TidListCounter) fanOut(w int, fn func(wi int)) {
	if w <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	var once sync.Once
	var failure interface{}
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() { failure = r })
				}
			}()
			fn(wi)
		}(i)
	}
	wg.Wait()
	if failure != nil {
		panic(failure)
	}
}

// getWalker draws a walker from the pool, resetting its per-candidate state
// and giving it a fresh stats window.
func (c *TidListCounter) getWalker() *tlWalker {
	w, _ := c.pool.Get().(*tlWalker)
	if w == nil || w.space == nil || w.space.NumTx != c.numTx || w.space.Mode != c.opt.Rep {
		w = &tlWalker{space: NewTidSpace(c.numTx, c.opt.Rep)}
	} else {
		w.space.Stats = IntersectionStats{}
	}
	w.depth = 0
	w.prev = w.prev[:0]
	return w
}

// putWalker folds the walker's stats into the counter's and returns it to
// the pool (buffers intact — the steady state allocates nothing).
func (c *TidListCounter) putWalker(w *tlWalker) {
	c.mu.Lock()
	c.stats.Add(w.space.Stats)
	c.mu.Unlock()
	c.pool.Put(w)
}

// sortedOrder returns the candidate indices in lexicographic candidate
// order, skipping the sort when the list already is (the generator's usual
// output; combined two-level passes are the exception).
func sortedOrder(cands []itemset.Itemset) []int32 {
	order := make([]int32, len(cands))
	sorted := true
	for i := range order {
		order[i] = int32(i)
		if i > 0 && cands[i-1].Compare(cands[i]) > 0 {
			sorted = false
		}
	}
	if !sorted {
		sort.Slice(order, func(i, j int) bool {
			return cands[order[i]].Compare(cands[order[j]]) < 0
		})
	}
	return order
}

// tlLevel is one materialized prefix of the walker's stack. Level j covers
// the prefix cand[0..j+2) — level 0 is the first pair — and holds either
// its explicit tidset or, under RepDiffset, its diffset against the nearest
// explicit ancestor level (anchor): t(P_j) = set(anchor) \ diff_j.
type tlLevel struct {
	set    TidSet
	diff   TidSet
	isDiff bool
	anchor int
}

// tlWalker is the per-worker counting state: the prefix stack, scratch
// buffers, and the previous candidate for prefix sharing. Walkers are pooled
// and their buffers reused, so steady-state candidate counting allocates
// nothing.
type tlWalker struct {
	space   *TidSpace
	levels  []tlLevel
	scratch TidSet
	acc     TidSet
	acc2    TidSet
	prev    itemset.Itemset
	depth   int // number of valid levels for prev
}

// countCandidate returns the support of cand, reusing the prefix stack from
// the previous candidate up to their longest common prefix.
func (w *tlWalker) countCandidate(c *TidListCounter, cand itemset.Itemset) int64 {
	L := len(cand)
	switch L {
	case 0:
		return int64(c.numTx)
	case 1:
		return int64(c.item(cand[0]).card)
	case 2:
		return int64(w.space.AndCard(c.item(cand[0]), c.item(cand[1])))
	}
	lcp := 0
	for lcp < len(w.prev) && lcp < L && w.prev[lcp] == cand[lcp] {
		lcp++
	}
	keep := lcp - 1 // level j is shared iff j+2 ≤ lcp
	if keep > w.depth {
		keep = w.depth
	}
	if keep < 0 {
		keep = 0
	}
	for j := keep; j <= L-3; j++ {
		w.buildLevel(c, cand, j)
	}
	w.depth = L - 2
	w.prev = append(w.prev[:0], cand...)
	return w.finalCount(c, L-3, cand[L-1])
}

// buildLevel materializes level j (the prefix cand[0..j+2)) from level j−1.
func (w *tlWalker) buildLevel(c *TidListCounter, cand itemset.Itemset, j int) {
	for len(w.levels) <= j {
		w.levels = append(w.levels, tlLevel{})
	}
	lv := &w.levels[j]
	tx := c.item(cand[j+1])
	if j == 0 {
		w.space.And(&lv.set, c.item(cand[0]), tx)
		lv.isDiff = false
		return
	}
	parent := &w.levels[j-1]
	if w.space.Mode != RepDiffset {
		w.space.And(&lv.set, &parent.set, tx)
		lv.isDiff = false
		return
	}
	// dEclat deltas: keep only the diffset against the nearest explicit
	// ancestor A. t(P_j) = t(A) \ D_j with
	//   D_j = D_{j-1} ∪ (t(A) \ t(x))          [D_0 at the switch = t(A)\t(x)]
	// — both identities from d(PX) = t(P) \ t(PX).
	if !parent.isDiff {
		lv.anchor = j - 1
		w.space.Diff(&lv.diff, &parent.set, tx)
	} else {
		lv.anchor = parent.anchor
		w.space.Diff(&w.scratch, &w.levels[parent.anchor].set, tx)
		w.space.Or(&lv.diff, &parent.diff, &w.scratch)
	}
	lv.isDiff = true
}

// finalCount counts prefix-level j extended by the last item y, without
// materializing anything. With a diffset level, D ⊆ t(A) gives
// |t(P) ∩ t(y)| = |t(A) ∩ t(y)| − |D ∩ t(y)|.
func (w *tlWalker) finalCount(c *TidListCounter, j int, y itemset.Item) int64 {
	lv := &w.levels[j]
	ty := c.item(y)
	if !lv.isDiff {
		return int64(w.space.AndCard(&lv.set, ty))
	}
	w.space.Stats.Diffset++
	return int64(w.space.AndCard(&w.levels[lv.anchor].set, ty)) - int64(w.space.AndCard(&lv.diff, ty))
}

// countElem returns the support of one MFCS element by chain-intersecting
// its items' tidsets, smallest first, with an early exit at zero.
func (w *tlWalker) countElem(c *TidListCounter, e itemset.Itemset) int64 {
	switch len(e) {
	case 0:
		return int64(c.numTx)
	case 1:
		return int64(c.item(e[0]).card)
	}
	minIdx := 0
	for i := 1; i < len(e); i++ {
		if c.item(e[i]).card < c.item(e[minIdx]).card {
			minIdx = i
		}
	}
	if c.item(e[minIdx]).card == 0 {
		return 0
	}
	if len(e) == 2 {
		return int64(w.space.AndCard(c.item(e[0]), c.item(e[1])))
	}
	src := c.item(e[minIdx])
	for i, it := range e {
		if i == minIdx {
			continue
		}
		dst := &w.acc
		if src == &w.acc {
			dst = &w.acc2
		}
		w.space.And(dst, src, c.item(it))
		if dst.card == 0 {
			return 0
		}
		src = dst
	}
	return int64(src.card)
}

// Canceled is the panic sentinel the vertical counter's operation guards
// raise when their bound context is cancelled mid-pass. The mining layer
// (mfi.AbortFrom) converts it into its abort sentinel, so cancellation of a
// tid-list pass surfaces as the same partial result a scan pass produces.
type Canceled struct{ Err error }

// Error implements error.
func (c *Canceled) Error() string { return fmt.Sprintf("counting: pass cancelled: %v", c.Err) }

// Unwrap exposes the context error.
func (c *Canceled) Unwrap() error { return c.Err }

// opGuard checks a context every `every` kernel operations. A nil guard is
// valid and free.
type opGuard struct {
	ctx   context.Context
	every int
	n     int
}

// guard builds the per-worker cancellation guard (nil when no context is
// bound).
func (c *TidListCounter) guard() *opGuard {
	if c.ctx == nil {
		return nil
	}
	every := c.checkEvery
	if every <= 0 {
		every = 1024
	}
	return &opGuard{ctx: c.ctx, every: every}
}

// tick registers one operation, panicking with Canceled when the context
// was cancelled and a check is due.
func (g *opGuard) tick() {
	if g == nil {
		return
	}
	g.n++
	if g.n < g.every {
		return
	}
	g.n = 0
	if err := g.ctx.Err(); err != nil {
		panic(&Canceled{Err: err})
	}
}
