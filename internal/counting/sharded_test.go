package counting

import (
	"math/rand"
	"sync"
	"testing"

	"pincer/internal/itemset"
)

func TestShardedMatchesSequential(t *testing.T) {
	for _, e := range []Engine{EngineList, EngineHashTree, EngineTrie} {
		for _, workers := range []int{1, 2, 3, 7} {
			s := NewSharded(e, testCandidates, workers)
			if s.NumCandidates() != len(testCandidates) || s.Workers() != workers {
				t.Fatalf("%s/w=%d: NumCandidates=%d Workers=%d", e, workers, s.NumCandidates(), s.Workers())
			}
			// round-robin the transactions over the shards, concurrently
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					sh := s.Shard(w)
					for i := w; i < len(testTransactions); i += workers {
						sh.Add(testTransactions[i])
					}
				}(w)
			}
			wg.Wait()
			got := s.Counts()
			for i := range wantCounts {
				if got[i] != wantCounts[i] {
					t.Errorf("%s/w=%d: count[%v] = %d, want %d", e, workers, testCandidates[i], got[i], wantCounts[i])
				}
			}
		}
	}
}

func TestShardedRandomizedAgainstList(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		universe := 4 + r.Intn(12)
		// engines require distinct candidates (as real candidate lists are)
		seen := map[string]bool{}
		var cands []itemset.Itemset
		for i := 0; i < 1+r.Intn(20); i++ {
			n := 1 + r.Intn(4)
			items := make([]itemset.Item, n)
			for j := range items {
				items[j] = itemset.Item(r.Intn(universe))
			}
			c := itemset.New(items...)
			if !seen[c.Key()] {
				seen[c.Key()] = true
				cands = append(cands, c)
			}
		}
		var txs []itemset.Itemset
		for i := 0; i < 1+r.Intn(50); i++ {
			n := 1 + r.Intn(universe)
			items := make([]itemset.Item, n)
			for j := range items {
				items[j] = itemset.Item(r.Intn(universe))
			}
			txs = append(txs, itemset.New(items...))
		}
		want := NewList(cands)
		for _, tx := range txs {
			want.Add(tx)
		}
		workers := 1 + r.Intn(5)
		for _, e := range []Engine{EngineList, EngineHashTree, EngineTrie} {
			s := NewSharded(e, cands, workers)
			for i, tx := range txs {
				s.Shard(i % workers).Add(tx)
			}
			got := s.Counts()
			for i := range cands {
				if got[i] != want.Counts()[i] {
					t.Fatalf("trial %d %s/w=%d: count[%v] = %d, want %d",
						trial, e, workers, cands[i], got[i], want.Counts()[i])
				}
			}
		}
	}
}

func TestShardedAsPlainCounter(t *testing.T) {
	// A Sharded used single-threaded through the Counter interface counts
	// like any other engine.
	var c Counter = NewSharded(EngineHashTree, testCandidates, 4)
	for _, tx := range testTransactions {
		c.Add(tx)
	}
	got := c.Counts()
	for i := range wantCounts {
		if got[i] != wantCounts[i] {
			t.Errorf("count[%v] = %d, want %d", testCandidates[i], got[i], wantCounts[i])
		}
	}
}

func TestShardedClampsWorkers(t *testing.T) {
	if w := NewSharded(EngineTrie, testCandidates, 0).Workers(); w != 1 {
		t.Errorf("workers clamped to %d, want 1", w)
	}
}

func TestTriangleShardMerge(t *testing.T) {
	live := itemset.New(0, 1, 2, 3, 4)
	seq := NewTriangle(6, live)
	for _, tx := range testTransactions {
		seq.Add(tx)
	}
	base := NewTriangle(6, live)
	shards := []*Triangle{base, base.Shard(), base.Shard()}
	for i, tx := range testTransactions {
		shards[i%len(shards)].Add(tx)
	}
	for _, s := range shards[1:] {
		base.Merge(s)
	}
	seq.Each(func(x, y itemset.Item, want int64) {
		if got := base.Count(x, y); got != want {
			t.Errorf("merged count(%v,%v) = %d, want %d", x, y, got, want)
		}
	})
	defer func() {
		if recover() == nil {
			t.Error("Merge over different live sets did not panic")
		}
	}()
	base.Merge(NewTriangle(6, itemset.New(0, 1)))
}

func TestItemArrayMerge(t *testing.T) {
	a, b, want := NewItemArray(6), NewItemArray(6), NewItemArray(6)
	for i, tx := range testTransactions {
		want.Add(tx)
		if i%2 == 0 {
			a.Add(tx)
		} else {
			b.Add(tx)
		}
	}
	a.Merge(b)
	for i, w := range want.Counts() {
		if a.Counts()[i] != w {
			t.Errorf("merged item %d = %d, want %d", i, a.Counts()[i], w)
		}
	}
}

func TestSumIntoMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SumInto length mismatch did not panic")
		}
	}()
	SumInto(make([]int64, 2), make([]int64, 3))
}
