package counting

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pincer/internal/itemset"
)

var testTransactions = []itemset.Itemset{
	itemset.New(0, 1, 2, 3),
	itemset.New(1, 2, 3),
	itemset.New(0, 2),
	itemset.New(0, 1, 3),
	itemset.New(2, 3, 4),
	itemset.New(0, 1, 2, 3, 4),
}

var testCandidates = []itemset.Itemset{
	itemset.New(0, 1),       // 3
	itemset.New(1, 2, 3),    // 3
	itemset.New(0, 4),       // 1
	itemset.New(2, 3),       // 4
	itemset.New(0, 1, 2, 3), // 2
	itemset.New(4),          // 2
	itemset.New(5),          // 0
}

var wantCounts = []int64{3, 3, 1, 4, 2, 2, 0}

func runEngine(t *testing.T, e Engine) {
	t.Helper()
	c := NewCounter(e, testCandidates)
	if c.NumCandidates() != len(testCandidates) {
		t.Fatalf("NumCandidates = %d", c.NumCandidates())
	}
	for _, tx := range testTransactions {
		c.Add(tx)
	}
	got := c.Counts()
	for i := range wantCounts {
		if got[i] != wantCounts[i] {
			t.Errorf("%s: count[%v] = %d, want %d", e, testCandidates[i], got[i], wantCounts[i])
		}
	}
}

func TestEngines(t *testing.T) {
	for _, e := range []Engine{EngineList, EngineHashTree, EngineTrie} {
		t.Run(e.String(), func(t *testing.T) { runEngine(t, e) })
	}
}

func TestEngineStringAndParse(t *testing.T) {
	for _, e := range []Engine{EngineList, EngineHashTree, EngineTrie} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseEngine("nope"); err == nil {
		t.Error("ParseEngine accepted garbage")
	}
	if Engine(99).String() == "" {
		t.Error("unknown engine has empty String")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewCounter with bad engine should panic")
		}
	}()
	NewCounter(Engine(99), nil)
}

func TestEmptyCandidateList(t *testing.T) {
	for _, e := range []Engine{EngineList, EngineHashTree, EngineTrie} {
		c := NewCounter(e, nil)
		c.Add(itemset.New(1, 2, 3))
		if len(c.Counts()) != 0 || c.NumCandidates() != 0 {
			t.Errorf("%s: empty candidate list misbehaves", e)
		}
	}
}

func TestHashTreeSplitsAndStillCounts(t *testing.T) {
	// Enough same-length candidates to force several levels of splitting.
	var cands []itemset.Itemset
	for a := 0; a < 12; a++ {
		for b := a + 1; b < 12; b++ {
			for c := b + 1; c < 12; c++ {
				cands = append(cands, itemset.New(itemset.Item(a), itemset.Item(b), itemset.Item(c)))
			}
		}
	}
	h := NewHashTree(cands)
	tx := itemset.Range(0, 12)
	h.Add(tx) // contains every candidate
	for i, c := range h.Counts() {
		if c != 1 {
			t.Fatalf("candidate %v counted %d times in a superset transaction", cands[i], c)
		}
	}
	h.Add(itemset.New(0, 1)) // contains none
	for i, c := range h.Counts() {
		if c != 1 {
			t.Fatalf("candidate %v count changed to %d after irrelevant transaction", cands[i], c)
		}
	}
}

func TestHashTreeNoDoubleCountOnHashCollisions(t *testing.T) {
	// Items 1 and 9 collide (mod 8); a transaction containing both must
	// still count each candidate at most once.
	cands := []itemset.Itemset{itemset.New(1, 9), itemset.New(9, 17)}
	h := NewHashTree(cands)
	h.Add(itemset.New(1, 9, 17))
	counts := h.Counts()
	if counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("counts = %v, want [1 1]", counts)
	}
}

func TestItemArray(t *testing.T) {
	a := NewItemArray(5)
	for _, tx := range testTransactions {
		a.Add(tx)
	}
	want := []int64{4, 4, 5, 5, 2}
	for i, w := range want {
		if got := a.Count(itemset.Item(i)); got != w {
			t.Errorf("item %d count = %d, want %d", i, got, w)
		}
	}
	if len(a.Counts()) != 5 {
		t.Errorf("Counts len = %d", len(a.Counts()))
	}
}

func TestTriangle(t *testing.T) {
	live := itemset.New(0, 1, 2, 3) // exclude item 4
	tri := NewTriangle(5, live)
	if tri.NumPairs() != 6 {
		t.Fatalf("NumPairs = %d, want 6", tri.NumPairs())
	}
	for _, tx := range testTransactions {
		tri.Add(tx)
	}
	tests := []struct {
		x, y itemset.Item
		want int64
	}{
		{0, 1, 3},
		{1, 0, 3}, // order-insensitive
		{0, 2, 3},
		{0, 3, 3},
		{1, 2, 3},
		{1, 3, 4},
		{2, 3, 4},
		{0, 4, 0}, // 4 not live
		{4, 4, 0},
		{2, 2, 0}, // degenerate pair
	}
	for _, tc := range tests {
		if got := tri.Count(tc.x, tc.y); got != tc.want {
			t.Errorf("Count(%d,%d) = %d, want %d", tc.x, tc.y, got, tc.want)
		}
	}
	// Each visits all pairs in lexicographic order with correct counts.
	var seen int
	var prev [2]itemset.Item
	first := true
	tri.Each(func(x, y itemset.Item, count int64) {
		seen++
		if got := tri.Count(x, y); got != count {
			t.Errorf("Each count mismatch for (%d,%d): %d vs %d", x, y, count, got)
		}
		if !first {
			if x < prev[0] || (x == prev[0] && y <= prev[1]) {
				t.Errorf("Each out of order: (%d,%d) after (%d,%d)", x, y, prev[0], prev[1])
			}
		}
		prev = [2]itemset.Item{x, y}
		first = false
	})
	if seen != 6 {
		t.Errorf("Each visited %d pairs", seen)
	}
	// out-of-universe item
	if got := tri.Count(99, 0); got != 0 {
		t.Errorf("Count(99,0) = %d", got)
	}
}

func TestTriangleSparseLiveItems(t *testing.T) {
	live := itemset.New(10, 500, 999)
	tri := NewTriangle(1000, live)
	tri.Add(itemset.New(10, 500, 999))
	tri.Add(itemset.New(10, 999))
	if got := tri.Count(10, 500); got != 1 {
		t.Errorf("Count(10,500) = %d", got)
	}
	if got := tri.Count(10, 999); got != 2 {
		t.Errorf("Count(10,999) = %d", got)
	}
	if got := tri.Count(500, 999); got != 1 {
		t.Errorf("Count(500,999) = %d", got)
	}
}

// TestQuickEnginesAgree cross-checks all engines against naive counting on
// random workloads — the guarantee that engine choice cannot change any
// mining result.
// TestQuickEnginesAgreeMixedLengths covers arbitrary candidate collections
// — nested subsets, mixed lengths — which the Sampling algorithm and the
// MFCS counter rely on (the regression here was a hash tree that
// undercounted candidates shorter than their leaf depth).
func TestQuickEnginesAgreeMixedLengths(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		universe := 2 + r.Intn(20)
		txs := make([]itemset.Itemset, r.Intn(50))
		for i := range txs {
			txs[i] = randomItemsetOver(r, universe, 8)
		}
		seen := map[string]bool{}
		var cands []itemset.Itemset
		for i := 0; i < r.Intn(60); i++ {
			c := randomItemsetOver(r, universe, 6)
			if len(c) == 0 || seen[c.Key()] {
				continue
			}
			seen[c.Key()] = true
			cands = append(cands, c)
		}
		want := make([]int64, len(cands))
		for i, c := range cands {
			for _, tx := range txs {
				if c.IsSubsetOf(tx) {
					want[i]++
				}
			}
		}
		for _, e := range []Engine{EngineList, EngineHashTree, EngineTrie} {
			ctr := NewCounter(e, cands)
			for _, tx := range txs {
				ctr.Add(tx)
			}
			got := ctr.Counts()
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHashTreeMixedLengthsNestedCandidates(t *testing.T) {
	// Force splits with many long candidates, then verify nested short ones
	// (prefixes of the long ones) still count correctly.
	var cands []itemset.Itemset
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			for c := b + 1; c < 10; c++ {
				cands = append(cands, itemset.New(itemset.Item(a), itemset.Item(b), itemset.Item(c)))
			}
		}
	}
	cands = append(cands, itemset.New(0, 1), itemset.New(5), itemset.New(8, 9))
	h := NewHashTree(cands)
	h.Add(itemset.Range(0, 10))
	for i, c := range h.Counts() {
		if c != 1 {
			t.Fatalf("candidate %v counted %d, want 1", cands[i], c)
		}
	}
	h.Add(itemset.New(0, 1, 5))
	wantSecond := map[string]int64{
		itemset.New(0, 1).Key():    2,
		itemset.New(5).Key():       2,
		itemset.New(0, 1, 5).Key(): 2, // the triple itself is contained too
	}
	for i, c := range cands {
		want := int64(1)
		if w, ok := wantSecond[c.Key()]; ok {
			want = w
		}
		if h.Counts()[i] != want {
			t.Fatalf("candidate %v counted %d, want %d", c, h.Counts()[i], want)
		}
	}
}

func TestQuickEnginesAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		universe := 2 + r.Intn(30)
		numTx := r.Intn(60)
		txs := make([]itemset.Itemset, numTx)
		for i := range txs {
			txs[i] = randomItemsetOver(r, universe, 10)
		}
		numCand := r.Intn(40)
		cands := make([]itemset.Itemset, 0, numCand)
		seen := map[string]bool{}
		maxK := 4
		if universe < maxK {
			maxK = universe
		}
		k := 1 + r.Intn(maxK) // level-wise mining counts equal-length candidates
		for len(cands) < numCand {
			c := randomItemsetOver(r, universe, k)
			if len(c) != k {
				continue
			}
			if seen[c.Key()] {
				numCand--
				continue
			}
			seen[c.Key()] = true
			cands = append(cands, c)
		}
		want := make([]int64, len(cands))
		for i, c := range cands {
			for _, tx := range txs {
				if c.IsSubsetOf(tx) {
					want[i]++
				}
			}
		}
		for _, e := range []Engine{EngineList, EngineHashTree, EngineTrie} {
			ctr := NewCounter(e, cands)
			for _, tx := range txs {
				ctr.Add(tx)
			}
			got := ctr.Counts()
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func randomItemsetOver(r *rand.Rand, universe, maxLen int) itemset.Itemset {
	n := r.Intn(maxLen + 1)
	items := make([]itemset.Item, n)
	for i := range items {
		items[i] = itemset.Item(r.Intn(universe))
	}
	return itemset.New(items...)
}
