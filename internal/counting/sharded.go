package counting

import (
	"pincer/internal/itemset"
)

// SumInto adds src into dst element-wise. It is the merge step of
// count-distribution parallel counting; both slices must have equal length.
// A length mismatch — a counter merged against the wrong candidate list —
// raises a *MismatchError panic, which the mining boundary converts into a
// returned error (see mfi.RecoverMiningError).
func SumInto(dst, src []int64) {
	if len(dst) != len(src) {
		panic(&MismatchError{Op: "SumInto", Want: len(dst), Got: len(src)})
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Sharded counts one candidate list across multiple workers with zero
// per-transaction synchronization. Every worker owns a private Counter
// shard; for the hash tree and trie engines the shards share a single
// read-only candidate index built once, and each shard holds only its
// private count (and, for the hash tree, visit-stamp) arrays. Counts sums
// the shards at the pass barrier.
//
// Protocol: construct, hand shard w to exactly one goroutine, wait for all
// goroutines, then call Counts. No shard may be used by two goroutines, and
// Counts must not run concurrently with Add.
type Sharded struct {
	candidates []itemset.Itemset
	shards     []Counter
}

// NewSharded builds a sharded counter with one shard per worker.
func NewSharded(e Engine, candidates []itemset.Itemset, workers int) *Sharded {
	if workers < 1 {
		workers = 1
	}
	s := &Sharded{candidates: candidates, shards: make([]Counter, workers)}
	switch e {
	case EngineHashTree:
		base := NewHashTree(candidates)
		s.shards[0] = base
		for w := 1; w < workers; w++ {
			s.shards[w] = base.shard()
		}
	case EngineTrie:
		base := NewTrie(candidates)
		s.shards[0] = base
		for w := 1; w < workers; w++ {
			s.shards[w] = base.shard()
		}
	default:
		// The list engine has no index to share (its per-shard state is the
		// count array itself); unknown engines panic in NewCounter.
		for w := range s.shards {
			s.shards[w] = NewCounter(e, candidates)
		}
	}
	return s
}

// Shard returns worker w's private counter.
func (s *Sharded) Shard(w int) Counter { return s.shards[w] }

// Workers returns the number of shards.
func (s *Sharded) Workers() int { return len(s.shards) }

// Counts implements Counter: the per-shard counts summed.
func (s *Sharded) Counts() []int64 {
	total := make([]int64, len(s.candidates))
	for _, sh := range s.shards {
		SumInto(total, sh.Counts())
	}
	return total
}

// NumCandidates implements Counter.
func (s *Sharded) NumCandidates() int { return len(s.candidates) }

// Add implements Counter by counting on shard 0, so a Sharded used from a
// single goroutine still behaves as an ordinary Counter.
func (s *Sharded) Add(tx itemset.Itemset) { s.shards[0].Add(tx) }
