package counting

import "pincer/internal/itemset"

// HashTree is the candidate store of Agrawal & Srikant [AS94]: interior
// nodes hash the next item of a candidate into a fixed fan-out, leaves hold
// small buckets of candidates. Counting a transaction descends the tree once
// per viable item position, touching only candidates that can possibly be
// contained.
//
// Candidates of mixed lengths are supported: a candidate whose items are
// exhausted at an interior node is stored in that node's bucket, and buckets
// are checked at every node visited during a descent. Because distinct items
// can hash to the same child, a node may be reached through several paths
// for one transaction; a per-candidate transaction stamp guarantees each
// candidate is counted at most once per transaction.
type HashTree struct {
	candidates []itemset.Itemset
	counts     []int64
	stamp      []int64 // last transaction id that counted candidate i
	txID       int64
	root       *htNode
	fanout     int
	maxLeaf    int
}

// htNode is a tree node. Leaves (children == nil) hold arbitrary candidates
// in bucket; interior nodes hold only candidates exhausted at their depth.
type htNode struct {
	children []*htNode // nil for leaves; length fanout for interior nodes
	bucket   []int32   // candidate indices
	depth    int
}

const (
	defaultFanout  = 8
	defaultMaxLeaf = 16
)

// NewHashTree builds a hash tree over the candidate list.
func NewHashTree(candidates []itemset.Itemset) *HashTree {
	h := &HashTree{
		candidates: candidates,
		counts:     make([]int64, len(candidates)),
		stamp:      make([]int64, len(candidates)),
		fanout:     defaultFanout,
		maxLeaf:    defaultMaxLeaf,
		root:       &htNode{},
	}
	for i := range h.stamp {
		h.stamp[i] = -1
	}
	for i := range candidates {
		h.insert(int32(i))
	}
	return h
}

func (h *HashTree) hash(it itemset.Item) int { return int(it) % h.fanout }

func (h *HashTree) insert(ci int32) {
	c := h.candidates[ci]
	n := h.root
	for {
		if n.children == nil { // leaf
			n.bucket = append(n.bucket, ci)
			h.maybeSplit(n)
			return
		}
		if len(c) <= n.depth {
			// Exhausted at an interior node: stash here; descend checks
			// interior buckets too.
			n.bucket = append(n.bucket, ci)
			return
		}
		n = n.children[h.hash(c[n.depth])]
	}
}

// maybeSplit converts an overfull leaf into an interior node, distributing
// candidates with items left to hash and keeping exhausted ones in place.
func (h *HashTree) maybeSplit(n *htNode) {
	movable := 0
	for _, ci := range n.bucket {
		if len(h.candidates[ci]) > n.depth {
			movable++
		}
	}
	if movable <= h.maxLeaf {
		return
	}
	bucket := n.bucket
	n.bucket = nil
	n.children = make([]*htNode, h.fanout)
	for i := range n.children {
		n.children[i] = &htNode{depth: n.depth + 1}
	}
	for _, ci := range bucket {
		c := h.candidates[ci]
		if len(c) <= n.depth {
			n.bucket = append(n.bucket, ci) // stays stashed here
			continue
		}
		child := n.children[h.hash(c[n.depth])]
		child.bucket = append(child.bucket, ci)
	}
	for _, child := range n.children {
		h.maybeSplit(child)
	}
}

// shard returns a counter sharing h's tree — immutable once built — while
// owning private count and stamp arrays, so Adds on distinct shards touch no
// common memory. Used by Sharded; h must not be mutated afterwards.
func (h *HashTree) shard() *HashTree {
	s := &HashTree{
		candidates: h.candidates,
		counts:     make([]int64, len(h.candidates)),
		stamp:      make([]int64, len(h.candidates)),
		root:       h.root,
		fanout:     h.fanout,
		maxLeaf:    h.maxLeaf,
	}
	for i := range s.stamp {
		s.stamp[i] = -1
	}
	return s
}

// Add implements Counter.
func (h *HashTree) Add(tx itemset.Itemset) {
	h.txID++
	h.descend(h.root, tx, 0)
}

func (h *HashTree) descend(n *htNode, tx itemset.Itemset, pos int) {
	for _, ci := range n.bucket {
		if h.stamp[ci] == h.txID {
			continue
		}
		if h.candidates[ci].IsSubsetOf(tx) {
			h.stamp[ci] = h.txID
			h.counts[ci]++
		}
	}
	if n.children == nil {
		return
	}
	for i := pos; i < len(tx); i++ {
		h.descend(n.children[h.hash(tx[i])], tx, i+1)
	}
}

// Counts implements Counter.
func (h *HashTree) Counts() []int64 { return h.counts }

// NumCandidates implements Counter.
func (h *HashTree) NumCandidates() int { return len(h.candidates) }
