package counting

import (
	"sort"

	"pincer/internal/itemset"
)

// Trie counts candidates stored in a prefix tree keyed by item. Each
// candidate is a root-to-node path of strictly increasing items, so every
// candidate matches a transaction along exactly one descent — no
// transaction stamps are needed. Candidates of arbitrary mixed lengths are
// supported: a candidate that is a prefix of another simply terminates at
// an interior node.
type Trie struct {
	candidates []itemset.Itemset
	counts     []int64
	root       *trieNode
}

type trieNode struct {
	items    []itemset.Item // sorted child keys
	children []*trieNode    // parallel to items
	terminal int32          // candidate index terminating here, -1 otherwise
}

func newTrieNode() *trieNode { return &trieNode{terminal: -1} }

// NewTrie builds a Trie counter over the candidate list.
func NewTrie(candidates []itemset.Itemset) *Trie {
	t := &Trie{
		candidates: candidates,
		counts:     make([]int64, len(candidates)),
		root:       newTrieNode(),
	}
	for i, c := range candidates {
		t.insert(int32(i), c)
	}
	return t
}

func (t *Trie) insert(ci int32, c itemset.Itemset) {
	n := t.root
	for _, it := range c {
		j := sort.Search(len(n.items), func(k int) bool { return n.items[k] >= it })
		if j == len(n.items) || n.items[j] != it {
			child := newTrieNode()
			n.items = append(n.items, 0)
			n.children = append(n.children, nil)
			copy(n.items[j+1:], n.items[j:])
			copy(n.children[j+1:], n.children[j:])
			n.items[j] = it
			n.children[j] = child
		}
		n = n.children[j]
	}
	n.terminal = ci
}

// shard returns a counter sharing t's prefix tree — immutable once built —
// with a private count array. Used by Sharded; t must not be mutated
// afterwards.
func (t *Trie) shard() *Trie {
	return &Trie{
		candidates: t.candidates,
		counts:     make([]int64, len(t.candidates)),
		root:       t.root,
	}
}

// Add implements Counter.
func (t *Trie) Add(tx itemset.Itemset) {
	t.count(t.root, tx)
}

// count merges the node's child keys with the transaction's remaining items
// (both sorted) and recurses on every match.
func (t *Trie) count(n *trieNode, tx itemset.Itemset) {
	i, j := 0, 0
	for i < len(n.items) && j < len(tx) {
		switch {
		case n.items[i] < tx[j]:
			i++
		case n.items[i] > tx[j]:
			j++
		default:
			child := n.children[i]
			if child.terminal >= 0 {
				t.counts[child.terminal]++
			}
			if len(child.items) > 0 {
				t.count(child, tx[j+1:])
			}
			i++
			j++
		}
	}
}

// Counts implements Counter.
func (t *Trie) Counts() []int64 { return t.counts }

// NumCandidates implements Counter.
func (t *Trie) NumCandidates() int { return len(t.candidates) }
