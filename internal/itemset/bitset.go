package itemset

import (
	"math/bits"
	"strings"
)

// Bitset is a dense fixed-universe set of items, used where subset tests
// dominate: transaction membership during MFCS support counting and the
// antichain maintenance inside MFCS-gen. For the benchmark universe
// (N = 1000 items) a Bitset is sixteen 64-bit words, and a subset test is
// sixteen AND/compare pairs.
type Bitset struct {
	words []uint64
}

// NewBitset returns an empty bitset able to hold items in [0, universe).
func NewBitset(universe int) *Bitset {
	if universe < 0 {
		universe = 0
	}
	return &Bitset{words: make([]uint64, (universe+63)/64)}
}

// BitsetOf builds a bitset over the given universe from an itemset.
func BitsetOf(universe int, s Itemset) *Bitset {
	b := NewBitset(universe)
	for _, it := range s {
		b.Add(it)
	}
	return b
}

// Add inserts item x, growing the word slice if needed.
func (b *Bitset) Add(x Item) {
	w := int(x) / 64
	for w >= len(b.words) {
		b.words = append(b.words, 0)
	}
	b.words[w] |= 1 << (uint(x) % 64)
}

// Remove deletes item x if present.
func (b *Bitset) Remove(x Item) {
	w := int(x) / 64
	if w < len(b.words) {
		b.words[w] &^= 1 << (uint(x) % 64)
	}
}

// Contains reports membership of x.
func (b *Bitset) Contains(x Item) bool {
	w := int(x) / 64
	return w < len(b.words) && b.words[w]&(1<<(uint(x)%64)) != 0
}

// Len returns the number of items in the set.
func (b *Bitset) Len() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsSubsetOf reports whether every item of b is in c.
func (b *Bitset) IsSubsetOf(c *Bitset) bool {
	for i, w := range b.words {
		var cw uint64
		if i < len(c.words) {
			cw = c.words[i]
		}
		if w&^cw != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether b and c share any item.
func (b *Bitset) Intersects(c *Bitset) bool {
	n := len(b.words)
	if len(c.words) < n {
		n = len(c.words)
	}
	for i := 0; i < n; i++ {
		if b.words[i]&c.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports set equality.
func (b *Bitset) Equal(c *Bitset) bool {
	n := len(b.words)
	if len(c.words) > n {
		n = len(c.words)
	}
	for i := 0; i < n; i++ {
		var bw, cw uint64
		if i < len(b.words) {
			bw = b.words[i]
		}
		if i < len(c.words) {
			cw = c.words[i]
		}
		if bw != cw {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w}
}

// Clear removes all items without releasing storage.
func (b *Bitset) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// AndNot removes every item of c from b in place.
func (b *Bitset) AndNot(c *Bitset) {
	n := len(b.words)
	if len(c.words) < n {
		n = len(c.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &^= c.words[i]
	}
}

// Or adds every item of c to b in place.
func (b *Bitset) Or(c *Bitset) {
	for len(b.words) < len(c.words) {
		b.words = append(b.words, 0)
	}
	for i, w := range c.words {
		b.words[i] |= w
	}
}

// CountAnd returns |b ∩ c| without materializing the intersection.
func (b *Bitset) CountAnd(c *Bitset) int {
	n := len(b.words)
	if len(c.words) < n {
		n = len(c.words)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += bits.OnesCount64(b.words[i] & c.words[i])
	}
	return total
}

// IntersectCount returns |b ∩ c| by word-wide popcount, allocating nothing.
// It is the support kernel of the vertical counters: when only the
// cardinality of an intersection is needed, the intersection itself is never
// materialized.
func (b *Bitset) IntersectCount(c *Bitset) int { return b.CountAnd(c) }

// AndInto stores a ∩ b into dst, reusing dst's word storage when it is large
// enough — the pool-friendly form: a dst drawn from a sync.Pool makes the
// intersection allocation-free in steady state. dst may alias a or b.
func AndInto(dst, a, b *Bitset) {
	n := len(a.words)
	if len(b.words) < n {
		n = len(b.words)
	}
	if cap(dst.words) < n {
		dst.words = make([]uint64, n)
	}
	dst.words = dst.words[:n]
	for i := 0; i < n; i++ {
		dst.words[i] = a.words[i] & b.words[i]
	}
}

// Items materializes the members as a sorted Itemset.
func (b *Bitset) Items() Itemset {
	out := make(Itemset, 0, b.Len())
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, Item(wi*64+bit))
			w &= w - 1
		}
	}
	return out
}

// Each calls f for every member in increasing order.
func (b *Bitset) Each(f func(Item)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			f(Item(wi*64 + bit))
			w &= w - 1
		}
	}
}

// String renders like Itemset.String.
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.Each(func(it Item) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(itoa(int(it)))
	})
	sb.WriteByte('}')
	return sb.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
