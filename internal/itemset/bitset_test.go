package itemset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(128)
	if b.Len() != 0 {
		t.Fatalf("new bitset Len = %d", b.Len())
	}
	b.Add(0)
	b.Add(63)
	b.Add(64)
	b.Add(127)
	for _, x := range []Item{0, 63, 64, 127} {
		if !b.Contains(x) {
			t.Errorf("Contains(%d) = false", x)
		}
	}
	for _, x := range []Item{1, 62, 65, 126, 500} {
		if b.Contains(x) {
			t.Errorf("Contains(%d) = true", x)
		}
	}
	if b.Len() != 4 {
		t.Errorf("Len = %d, want 4", b.Len())
	}
	b.Remove(63)
	if b.Contains(63) || b.Len() != 3 {
		t.Errorf("after Remove: Contains(63)=%v Len=%d", b.Contains(63), b.Len())
	}
	b.Remove(999) // out of range: no-op
	if b.Len() != 3 {
		t.Errorf("Remove out of range changed Len to %d", b.Len())
	}
}

func TestBitsetGrowsOnAdd(t *testing.T) {
	b := NewBitset(0)
	b.Add(1000)
	if !b.Contains(1000) {
		t.Fatal("Add beyond universe did not grow")
	}
	if b.Contains(999) {
		t.Fatal("spurious membership")
	}
}

func TestBitsetSubsetAndEqual(t *testing.T) {
	u := 256
	a := BitsetOf(u, New(1, 2, 3))
	b := BitsetOf(u, New(1, 2, 3, 200))
	c := BitsetOf(u, New(1, 2, 4))
	if !a.IsSubsetOf(b) {
		t.Error("a ⊆ b expected")
	}
	if b.IsSubsetOf(a) {
		t.Error("b ⊆ a unexpected")
	}
	if a.IsSubsetOf(c) || c.IsSubsetOf(a) {
		t.Error("a,c incomparable expected")
	}
	if !a.Equal(BitsetOf(u, New(3, 2, 1))) {
		t.Error("Equal failed")
	}
	if a.Equal(c) {
		t.Error("Equal false positive")
	}
	// different word lengths still compare correctly
	short := BitsetOf(10, New(1, 2, 3))
	if !a.Equal(short) || !short.Equal(a) {
		t.Error("Equal across different universes failed")
	}
	if !short.IsSubsetOf(b) {
		t.Error("short ⊆ b expected")
	}
	if b.IsSubsetOf(short) {
		t.Error("b ⊆ short unexpected")
	}
}

func TestBitsetOps(t *testing.T) {
	u := 128
	a := BitsetOf(u, New(1, 2, 3, 70))
	b := BitsetOf(u, New(2, 3, 4))
	if !a.Intersects(b) {
		t.Error("Intersects expected")
	}
	if a.Intersects(BitsetOf(u, New(9, 90))) {
		t.Error("Intersects unexpected")
	}
	if got := a.CountAnd(b); got != 2 {
		t.Errorf("CountAnd = %d, want 2", got)
	}
	c := a.Clone()
	c.AndNot(b)
	if !c.Items().Equal(New(1, 70)) {
		t.Errorf("AndNot = %v", c.Items())
	}
	c.Or(b)
	if !c.Items().Equal(New(1, 2, 3, 4, 70)) {
		t.Errorf("Or = %v", c.Items())
	}
	// Clone independence
	a2 := a.Clone()
	a2.Remove(1)
	if !a.Contains(1) {
		t.Error("Clone not independent")
	}
	a2.Clear()
	if a2.Len() != 0 {
		t.Errorf("Clear left %d items", a2.Len())
	}
}

func TestBitsetItemsAndEach(t *testing.T) {
	want := New(0, 5, 63, 64, 100)
	b := BitsetOf(128, want)
	if got := b.Items(); !got.Equal(want) {
		t.Errorf("Items = %v, want %v", got, want)
	}
	var got Itemset
	b.Each(func(it Item) { got = append(got, it) })
	if !got.Equal(want) {
		t.Errorf("Each = %v, want %v", got, want)
	}
	if s := b.String(); s != "{0,5,63,64,100}" {
		t.Errorf("String = %q", s)
	}
}

func TestQuickBitsetAgreesWithItemset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomItemset(r), randomItemset(r)
		ba, bb := BitsetOf(32, a), BitsetOf(32, b)
		if ba.IsSubsetOf(bb) != a.IsSubsetOf(b) {
			return false
		}
		if !ba.Items().Equal(a) {
			return false
		}
		if ba.Len() != len(a) {
			return false
		}
		if ba.CountAnd(bb) != len(a.Intersect(b)) {
			return false
		}
		if ba.Intersects(bb) != (len(a.Intersect(b)) > 0) {
			return false
		}
		u := ba.Clone()
		u.Or(bb)
		if !u.Items().Equal(a.Union(b)) {
			return false
		}
		d := ba.Clone()
		d.AndNot(bb)
		return d.Items().Equal(a.Minus(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
