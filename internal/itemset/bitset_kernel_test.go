package itemset

import "testing"

// boundaryUniverses exercises the word-boundary cases: one bit short of a
// word, exactly one word, and one bit into the second word.
var boundaryUniverses = []int{63, 64, 65}

func TestIntersectCountWordBoundaries(t *testing.T) {
	for _, n := range boundaryUniverses {
		a := NewBitset(n)
		b := NewBitset(n)
		// a = even items, b = multiples of 3; intersection = multiples of 6.
		want := 0
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				a.Add(Item(i))
			}
			if i%3 == 0 {
				b.Add(Item(i))
			}
			if i%6 == 0 {
				want++
			}
		}
		if got := a.IntersectCount(b); got != want {
			t.Errorf("universe %d: IntersectCount = %d, want %d", n, got, want)
		}
		if got := b.IntersectCount(a); got != want {
			t.Errorf("universe %d: IntersectCount (swapped) = %d, want %d", n, got, want)
		}
		// the boundary bits themselves
		top := NewBitset(n)
		top.Add(Item(n - 1))
		if got := top.IntersectCount(top); got != 1 {
			t.Errorf("universe %d: top-bit self intersection = %d, want 1", n, got)
		}
		if got := top.IntersectCount(NewBitset(n)); got != 0 {
			t.Errorf("universe %d: top-bit vs empty = %d, want 0", n, got)
		}
	}
}

func TestIntersectCountMismatchedLengths(t *testing.T) {
	a := NewBitset(65)
	a.Add(0)
	a.Add(64)
	b := NewBitset(63)
	b.Add(0)
	if got := a.IntersectCount(b); got != 1 {
		t.Errorf("long∩short = %d, want 1", got)
	}
	if got := b.IntersectCount(a); got != 1 {
		t.Errorf("short∩long = %d, want 1", got)
	}
}

func TestAndIntoWordBoundaries(t *testing.T) {
	for _, n := range boundaryUniverses {
		a := NewBitset(n)
		b := NewBitset(n)
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				a.Add(Item(i))
			}
			if i%3 == 0 {
				b.Add(Item(i))
			}
		}
		a.Add(Item(n - 1))
		b.Add(Item(n - 1))
		dst := NewBitset(0) // must grow
		AndInto(dst, a, b)
		for i := 0; i < n; i++ {
			want := a.Contains(Item(i)) && b.Contains(Item(i))
			if dst.Contains(Item(i)) != want {
				t.Errorf("universe %d: dst.Contains(%d) = %v, want %v", n, i, !want, want)
			}
		}
		if dst.Len() != a.CountAnd(b) {
			t.Errorf("universe %d: |dst| = %d, want %d", n, dst.Len(), a.CountAnd(b))
		}
	}
}

func TestAndIntoReusesStorage(t *testing.T) {
	a := NewBitset(128)
	b := NewBitset(128)
	a.Add(5)
	a.Add(127)
	b.Add(5)
	b.Add(64)
	dst := NewBitset(128) // pre-sized: no growth needed
	words := &dst.words[0]
	AndInto(dst, a, b)
	if &dst.words[0] != words {
		t.Error("AndInto reallocated a sufficiently large dst")
	}
	if !dst.Contains(5) || dst.Contains(64) || dst.Contains(127) || dst.Len() != 1 {
		t.Errorf("dst = %v, want {5}", dst)
	}
	// stale high bits from a previous, larger use must not leak through
	dst2 := NewBitset(256)
	for i := 0; i < 256; i++ {
		dst2.Add(Item(i))
	}
	AndInto(dst2, a, b)
	if dst2.Len() != 1 || !dst2.Contains(5) {
		t.Errorf("reused dst = %v, want {5}", dst2)
	}
}

func TestAndIntoAliasing(t *testing.T) {
	a := NewBitset(65)
	b := NewBitset(65)
	a.Add(1)
	a.Add(64)
	b.Add(64)
	AndInto(a, a, b)
	if a.Len() != 1 || !a.Contains(64) {
		t.Errorf("aliased AndInto = %v, want {64}", a)
	}
}
