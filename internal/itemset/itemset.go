// Package itemset provides the fundamental value types of frequent-itemset
// mining: items, itemsets (sorted, duplicate-free sequences of items), dense
// bitset representations, and hashed collections of itemsets.
//
// Itemsets are maintained in sorted lexicographic order throughout the
// library; the candidate-generation procedures of both Apriori and
// Pincer-Search rely on this invariant (paper §3.3).
package itemset

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Item identifies a single item. The synthetic benchmark databases use item
// identifiers in [0, N) with N = 1000; nothing in the library assumes a
// particular range beyond non-negativity.
type Item int32

// Itemset is a set of items represented as a strictly increasing slice.
// The zero value is the empty itemset.
//
// All exported functions and methods preserve the sortedness invariant and
// never alias their inputs unless documented otherwise.
type Itemset []Item

// New builds an Itemset from an arbitrary list of items, sorting and
// de-duplicating. The input slice is not modified.
func New(items ...Item) Itemset {
	if len(items) == 0 {
		return nil
	}
	s := make(Itemset, len(items))
	copy(s, items)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, it := range s[1:] {
		if it != out[len(out)-1] {
			out = append(out, it)
		}
	}
	return out
}

// FromSorted wraps a slice that is already strictly increasing. It panics if
// the invariant does not hold; use it only on slices you constructed.
func FromSorted(items []Item) Itemset {
	for i := 1; i < len(items); i++ {
		if items[i-1] >= items[i] {
			panic(fmt.Sprintf("itemset.FromSorted: not strictly increasing at %d: %v", i, items))
		}
	}
	return Itemset(items)
}

// Len returns the number of items (the paper's "length" of an itemset).
func (s Itemset) Len() int { return len(s) }

// Empty reports whether the itemset has no items.
func (s Itemset) Empty() bool { return len(s) == 0 }

// Clone returns an independent copy.
func (s Itemset) Clone() Itemset {
	if s == nil {
		return nil
	}
	c := make(Itemset, len(s))
	copy(c, s)
	return c
}

// Contains reports whether item x is a member.
func (s Itemset) Contains(x Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// IndexOf returns the position of x in s, or -1.
func (s Itemset) IndexOf(x Item) int {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return i
	}
	return -1
}

// IsSubsetOf reports whether every item of s belongs to t.
// Runs in O(len(s)+len(t)).
func (s Itemset) IsSubsetOf(t Itemset) bool {
	if len(s) > len(t) {
		return false
	}
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			i++
			j++
		case s[i] > t[j]:
			j++
		default:
			return false
		}
		if len(s)-i > len(t)-j {
			return false
		}
	}
	return i == len(s)
}

// IsSupersetOf reports whether s contains every item of t.
func (s Itemset) IsSupersetOf(t Itemset) bool { return t.IsSubsetOf(s) }

// Equal reports item-wise equality.
func (s Itemset) Equal(t Itemset) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Compare orders itemsets lexicographically by items, with ties broken by
// length (a proper prefix sorts first). It returns -1, 0, or +1.
func (s Itemset) Compare(t Itemset) int {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		if s[i] != t[i] {
			if s[i] < t[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(s) < len(t):
		return -1
	case len(s) > len(t):
		return 1
	}
	return 0
}

// Union returns the sorted union of s and t as a fresh slice.
func (s Itemset) Union(t Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns the sorted intersection of s and t as a fresh slice.
func (s Itemset) Intersect(t Itemset) Itemset {
	var out Itemset
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns s \ t as a fresh slice.
func (s Itemset) Minus(t Itemset) Itemset {
	var out Itemset
	i, j := 0, 0
	for i < len(s) {
		if j >= len(t) || s[i] < t[j] {
			out = append(out, s[i])
			i++
		} else if s[i] > t[j] {
			j++
		} else {
			i++
			j++
		}
	}
	return out
}

// Without returns a fresh copy of s with item x removed. If x is not a
// member, it returns a plain copy. This is the elementary MFCS-gen step
// (paper §3.2, line 7: m \ {e}).
func (s Itemset) Without(x Item) Itemset {
	i := s.IndexOf(x)
	if i < 0 {
		return s.Clone()
	}
	out := make(Itemset, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// WithoutIndex returns a fresh copy of s with the item at position i removed.
func (s Itemset) WithoutIndex(i int) Itemset {
	out := make(Itemset, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// With returns a fresh copy of s with item x inserted (no-op copy if
// already present).
func (s Itemset) With(x Item) Itemset {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return s.Clone()
	}
	out := make(Itemset, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, x)
	out = append(out, s[i:]...)
	return out
}

// Prefix returns the first k items of s (aliasing s, not a copy).
func (s Itemset) Prefix(k int) Itemset { return s[:k] }

// HasPrefix reports whether the first len(p) items of s equal p.
func (s Itemset) HasPrefix(p Itemset) bool {
	if len(p) > len(s) {
		return false
	}
	for i := range p {
		if s[i] != p[i] {
			return false
		}
	}
	return true
}

// SamePrefix reports whether s and t agree on their first k items. Both must
// have at least k items. This is the Apriori-gen join test (paper §3.3).
func SamePrefix(s, t Itemset, k int) bool {
	if len(s) < k || len(t) < k {
		return false
	}
	for i := 0; i < k; i++ {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Last returns the final (largest) item. It panics on the empty itemset.
func (s Itemset) Last() Item { return s[len(s)-1] }

// Subsets invokes f on every proper non-empty subset of s obtained by
// deleting exactly one item — the k-1 facets of a k-itemset. The slice passed
// to f is reused across calls; clone it to retain.
func (s Itemset) Facets(f func(Itemset)) {
	if len(s) <= 1 {
		return
	}
	buf := make(Itemset, len(s)-1)
	for i := range s {
		copy(buf, s[:i])
		copy(buf[i:], s[i+1:])
		f(buf)
	}
}

// EachSubsetOfSize invokes f on every subset of s of exactly k items, in
// lexicographic order. The slice passed to f is reused; clone to retain.
func (s Itemset) EachSubsetOfSize(k int, f func(Itemset)) {
	if k < 0 || k > len(s) {
		return
	}
	if k == 0 {
		f(nil)
		return
	}
	idx := make([]int, k)
	buf := make(Itemset, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		for i, j := range idx {
			buf[i] = s[j]
		}
		f(buf)
		// advance the combination
		i := k - 1
		for i >= 0 && idx[i] == len(s)-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// String renders the itemset as "{1,5,9}".
func (s Itemset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, it := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(it)))
	}
	b.WriteByte('}')
	return b.String()
}

// Parse parses the String form (braces optional, comma- or space-separated).
func Parse(s string) (Itemset, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "{")
	s = strings.TrimSuffix(s, "}")
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	items := make([]Item, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("itemset: parse %q: %w", f, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("itemset: negative item %d", v)
		}
		items = append(items, Item(v))
	}
	return New(items...), nil
}

// Range returns the itemset {lo, lo+1, ..., hi-1}; it is the conventional
// initial MFCS element "{1, 2, ..., n}" of paper §3.5 line 3.
func Range(lo, hi Item) Itemset {
	if hi <= lo {
		return nil
	}
	out := make(Itemset, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// Key returns a compact string usable as a map key. Unlike String it does
// not allocate per-item separators beyond a single byte and is not meant to
// be human-readable.
func (s Itemset) Key() string {
	if len(s) == 0 {
		return ""
	}
	b := make([]byte, 0, len(s)*4)
	for _, it := range s {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

// KeyToItemset reverses Key.
func KeyToItemset(k string) Itemset {
	if len(k)%4 != 0 {
		panic("itemset: malformed key")
	}
	out := make(Itemset, 0, len(k)/4)
	for i := 0; i < len(k); i += 4 {
		out = append(out, Item(uint32(k[i])|uint32(k[i+1])<<8|uint32(k[i+2])<<16|uint32(k[i+3])<<24))
	}
	return out
}
