package itemset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(0)
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	a := New(1, 2)
	s.Add(a)
	s.Add(a) // idempotent
	if s.Len() != 1 || !s.Contains(a) {
		t.Fatalf("after Add: Len=%d Contains=%v", s.Len(), s.Contains(a))
	}
	if _, ok := s.Count(a); !ok {
		t.Fatal("Count missing after Add")
	}
	s.AddWithCount(a, 42)
	if c, _ := s.Count(a); c != 42 {
		t.Fatalf("Count = %d, want 42", c)
	}
	// Add preserves existing count
	s.Add(a)
	if c, _ := s.Count(a); c != 42 {
		t.Fatalf("Add clobbered count: %d", c)
	}
	s.Remove(a)
	if s.Contains(a) || s.Len() != 0 {
		t.Fatal("Remove failed")
	}
	s.Remove(a) // no-op
}

func TestSetAddClones(t *testing.T) {
	s := NewSet(0)
	x := New(1, 2, 3)
	s.Add(x)
	x[0] = 99 // violate the caller's copy; the set must be unaffected
	if !s.Contains(New(1, 2, 3)) {
		t.Fatal("Set aliased its input")
	}
}

func TestSetSorted(t *testing.T) {
	s := SetOf(New(2, 3), New(1), New(1, 5), New(1, 2))
	got := s.Sorted()
	want := []Itemset{New(1), New(1, 2), New(1, 5), New(2, 3)}
	if len(got) != len(want) {
		t.Fatalf("Sorted len = %d", len(got))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("Sorted[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSetSubsetQueries(t *testing.T) {
	s := SetOf(New(1, 2), New(3, 4, 5))
	if !s.ContainsSubsetOf(New(1, 2, 9)) {
		t.Error("ContainsSubsetOf({1,2,9}) = false")
	}
	if s.ContainsSubsetOf(New(1, 3, 9)) {
		t.Error("ContainsSubsetOf({1,3,9}) = true")
	}
	if !s.ContainsSupersetOf(New(3, 5)) {
		t.Error("ContainsSupersetOf({3,5}) = false")
	}
	if s.ContainsSupersetOf(New(2, 3)) {
		t.Error("ContainsSupersetOf({2,3}) = true")
	}
}

func TestSetCloneIndependent(t *testing.T) {
	s := SetOf(New(1), New(2))
	c := s.Clone()
	c.Remove(New(1))
	c.Add(New(3))
	if !s.Contains(New(1)) || s.Contains(New(3)) || s.Len() != 2 {
		t.Fatal("Clone not independent")
	}
	if c.Len() != 2 || c.Contains(New(1)) {
		t.Fatal("Clone wrong contents")
	}
}

func TestMaximalOnly(t *testing.T) {
	tests := []struct {
		name string
		in   []Itemset
		want []Itemset
	}{
		{"empty", nil, nil},
		{"single", []Itemset{New(1)}, []Itemset{New(1)}},
		{
			"chain",
			[]Itemset{New(1), New(1, 2), New(1, 2, 3)},
			[]Itemset{New(1, 2, 3)},
		},
		{
			"antichain kept",
			[]Itemset{New(1, 2), New(2, 3)},
			[]Itemset{New(1, 2), New(2, 3)},
		},
		{
			"paper example §3.2",
			[]Itemset{New(1, 2, 3, 4, 5), New(2, 3, 4, 5), New(2, 4, 5, 6)},
			[]Itemset{New(1, 2, 3, 4, 5), New(2, 4, 5, 6)},
		},
		{
			"duplicates collapse",
			[]Itemset{New(1, 2), New(1, 2)},
			[]Itemset{New(1, 2)},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := MaximalOnly(tc.in)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if !got[i].Equal(tc.want[i]) {
					t.Errorf("got[%d] = %v, want %v", i, got[i], tc.want[i])
				}
			}
			if !IsAntichain(got) {
				t.Error("result not an antichain")
			}
		})
	}
}

func TestIsAntichain(t *testing.T) {
	if !IsAntichain([]Itemset{New(1, 2), New(2, 3), New(1, 3)}) {
		t.Error("true antichain rejected")
	}
	if IsAntichain([]Itemset{New(1), New(1, 2)}) {
		t.Error("chain accepted")
	}
	if IsAntichain([]Itemset{New(1, 2), New(1, 2)}) {
		t.Error("duplicates accepted (each is a subset of the other)")
	}
	if !IsAntichain(nil) {
		t.Error("empty rejected")
	}
}

func TestQuickMaximalOnlyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(12)
		in := make([]Itemset, n)
		for i := range in {
			in[i] = randomItemset(r)
		}
		out := MaximalOnly(in)
		if !IsAntichain(out) {
			return false
		}
		// every input is a subset of some output
		for _, x := range in {
			covered := false
			for _, m := range out {
				if x.IsSubsetOf(m) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		// every output is one of the inputs
		for _, m := range out {
			found := false
			for _, x := range in {
				if m.Equal(x) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
