package itemset

import "sort"

// Set is a hashed collection of distinct itemsets with optional associated
// support counts. It is the working representation of L_k (the frequent set
// of a pass), S_k (the infrequent set), and the MFS while mining.
type Set struct {
	m map[string]entry
}

type entry struct {
	set   Itemset
	count int64
}

// NewSet returns an empty Set with capacity hint n.
func NewSet(n int) *Set {
	return &Set{m: make(map[string]entry, n)}
}

// SetOf builds a Set from itemsets (support counts zero).
func SetOf(sets ...Itemset) *Set {
	s := NewSet(len(sets))
	for _, x := range sets {
		s.Add(x)
	}
	return s
}

// Len returns the number of itemsets.
func (s *Set) Len() int { return len(s.m) }

// Add inserts x with count 0 if absent; the existing count is preserved.
func (s *Set) Add(x Itemset) {
	k := x.Key()
	if _, ok := s.m[k]; !ok {
		s.m[k] = entry{set: x.Clone()}
	}
}

// AddWithCount inserts or replaces x with the given support count.
func (s *Set) AddWithCount(x Itemset, count int64) {
	s.m[x.Key()] = entry{set: x.Clone(), count: count}
}

// Remove deletes x; it is a no-op if absent.
func (s *Set) Remove(x Itemset) { delete(s.m, x.Key()) }

// Contains reports membership of exactly x.
func (s *Set) Contains(x Itemset) bool {
	_, ok := s.m[x.Key()]
	return ok
}

// Count returns the support count stored for x and whether x is present.
func (s *Set) Count(x Itemset) (int64, bool) {
	e, ok := s.m[x.Key()]
	return e.count, ok
}

// Each calls f for every member in unspecified order. f must not mutate s.
func (s *Set) Each(f func(Itemset, int64)) {
	for _, e := range s.m {
		f(e.set, e.count)
	}
}

// Sorted returns the members in lexicographic order.
func (s *Set) Sorted() []Itemset {
	out := make([]Itemset, 0, len(s.m))
	for _, e := range s.m {
		out = append(out, e.set)
	}
	SortItemsets(out)
	return out
}

// ContainsSubsetOf reports whether some member of s is a subset of x.
// This is the Observation-1 test: x is known infrequent if a recorded
// infrequent itemset is contained in it.
func (s *Set) ContainsSubsetOf(x Itemset) bool {
	for _, e := range s.m {
		if e.set.IsSubsetOf(x) {
			return true
		}
	}
	return false
}

// ContainsSupersetOf reports whether some member of s is a superset of x.
// This is the Observation-2 test: x is known frequent if a recorded frequent
// itemset contains it.
func (s *Set) ContainsSupersetOf(x Itemset) bool {
	for _, e := range s.m {
		if x.IsSubsetOf(e.set) {
			return true
		}
	}
	return false
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := NewSet(len(s.m))
	for k, e := range s.m {
		c.m[k] = entry{set: e.set.Clone(), count: e.count}
	}
	return c
}

// SortItemsets sorts a slice of itemsets into lexicographic order in place.
func SortItemsets(xs []Itemset) {
	sort.Slice(xs, func(i, j int) bool { return xs[i].Compare(xs[j]) < 0 })
}

// MaximalOnly filters xs down to its maximal elements (those not a proper
// subset of another element) and returns them in lexicographic order. This
// is the "maximal filter" used to derive an MFS from a plain frequent set.
func MaximalOnly(xs []Itemset) []Itemset {
	// Sort by decreasing length so that any superset precedes its subsets;
	// then a linear scan with subset tests against kept elements suffices.
	sorted := make([]Itemset, len(xs))
	copy(sorted, xs)
	sort.Slice(sorted, func(i, j int) bool {
		if len(sorted[i]) != len(sorted[j]) {
			return len(sorted[i]) > len(sorted[j])
		}
		return sorted[i].Compare(sorted[j]) < 0
	})
	var kept []Itemset
	// Equal-length sets can never strictly dominate each other, so each
	// element only needs testing against the kept prefix of longer sets;
	// a same-length antichain (e.g. one level of a top-down frontier)
	// costs no subset tests at all. Equal duplicates are adjacent after
	// the sort and are dropped by the Compare check.
	longer, curLen := 0, -1
	for i, x := range sorted {
		if len(x) != curLen {
			longer, curLen = len(kept), len(x)
		}
		if i > 0 && len(sorted[i-1]) == curLen && x.Compare(sorted[i-1]) == 0 {
			continue
		}
		dominated := false
		for _, m := range kept[:longer] {
			if x.IsSubsetOf(m) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, x)
		}
	}
	SortItemsets(kept)
	return kept
}

// MinimalOnly filters xs down to its minimal elements (those not a proper
// superset of another element), the dual of MaximalOnly; it is used by the
// hypergraph-transversal machinery behind minimal-key discovery.
func MinimalOnly(xs []Itemset) []Itemset {
	sorted := make([]Itemset, len(xs))
	copy(sorted, xs)
	sort.Slice(sorted, func(i, j int) bool {
		if len(sorted[i]) != len(sorted[j]) {
			return len(sorted[i]) < len(sorted[j])
		}
		return sorted[i].Compare(sorted[j]) < 0
	})
	var kept []Itemset
	for _, x := range sorted {
		dominated := false
		for _, m := range kept {
			if m.IsSubsetOf(x) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, x)
		}
	}
	SortItemsets(kept)
	return kept
}

// IsAntichain reports whether no element of xs is a subset of another
// (the MFCS minimality invariant of paper Definition 1).
func IsAntichain(xs []Itemset) bool {
	for i := range xs {
		for j := range xs {
			if i != j && xs[i].IsSubsetOf(xs[j]) {
				return false
			}
		}
	}
	return true
}
