package itemset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedups(t *testing.T) {
	tests := []struct {
		name string
		in   []Item
		want Itemset
	}{
		{"empty", nil, nil},
		{"single", []Item{7}, Itemset{7}},
		{"sorted", []Item{1, 2, 3}, Itemset{1, 2, 3}},
		{"reverse", []Item{3, 2, 1}, Itemset{1, 2, 3}},
		{"dups", []Item{5, 1, 5, 1, 5}, Itemset{1, 5}},
		{"all same", []Item{4, 4, 4}, Itemset{4}},
		{"interleaved", []Item{9, 0, 4, 9, 2, 0}, Itemset{0, 2, 4, 9}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := New(tc.in...)
			if !got.Equal(tc.want) {
				t.Fatalf("New(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestNewDoesNotMutateInput(t *testing.T) {
	in := []Item{3, 1, 2}
	New(in...)
	if !reflect.DeepEqual(in, []Item{3, 1, 2}) {
		t.Fatalf("New mutated its input: %v", in)
	}
}

func TestFromSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsorted input")
		}
	}()
	FromSorted([]Item{2, 1})
}

func TestFromSortedPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate input")
		}
	}()
	FromSorted([]Item{1, 1})
}

func TestContainsAndIndexOf(t *testing.T) {
	s := New(2, 4, 6, 8)
	for i, x := range []Item{2, 4, 6, 8} {
		if !s.Contains(x) {
			t.Errorf("Contains(%d) = false", x)
		}
		if got := s.IndexOf(x); got != i {
			t.Errorf("IndexOf(%d) = %d, want %d", x, got, i)
		}
	}
	for _, x := range []Item{0, 1, 3, 5, 7, 9, 100} {
		if s.Contains(x) {
			t.Errorf("Contains(%d) = true", x)
		}
		if got := s.IndexOf(x); got != -1 {
			t.Errorf("IndexOf(%d) = %d, want -1", x, got)
		}
	}
}

func TestIsSubsetOf(t *testing.T) {
	tests := []struct {
		s, t Itemset
		want bool
	}{
		{nil, nil, true},
		{nil, New(1), true},
		{New(1), nil, false},
		{New(1), New(1), true},
		{New(1, 3), New(1, 2, 3), true},
		{New(1, 4), New(1, 2, 3), false},
		{New(2, 3), New(1, 2, 3, 4), true},
		{New(1, 2, 3), New(1, 2), false},
		{New(0), New(1, 2), false},
		{New(5), New(1, 2, 5), true},
		{New(1, 2, 3, 4, 5), New(1, 2, 3, 4, 5), true},
		{New(1, 6), New(1, 2, 3, 4, 5, 6), true},
	}
	for _, tc := range tests {
		if got := tc.s.IsSubsetOf(tc.t); got != tc.want {
			t.Errorf("%v.IsSubsetOf(%v) = %v, want %v", tc.s, tc.t, got, tc.want)
		}
		if got := tc.t.IsSupersetOf(tc.s); got != tc.want {
			t.Errorf("%v.IsSupersetOf(%v) = %v, want %v", tc.t, tc.s, got, tc.want)
		}
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Itemset
		want int
	}{
		{nil, nil, 0},
		{nil, New(1), -1},
		{New(1), nil, 1},
		{New(1, 2), New(1, 2), 0},
		{New(1, 2), New(1, 3), -1},
		{New(1, 3), New(1, 2), 1},
		{New(1, 2), New(1, 2, 3), -1},
		{New(1, 2, 3), New(1, 2), 1},
		{New(2), New(10), -1},
	}
	for _, tc := range tests {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestUnionIntersectMinus(t *testing.T) {
	a := New(1, 3, 5, 7)
	b := New(3, 4, 5, 6)
	if got := a.Union(b); !got.Equal(New(1, 3, 4, 5, 6, 7)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(New(3, 5)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(New(1, 7)) {
		t.Errorf("Minus = %v", got)
	}
	if got := b.Minus(a); !got.Equal(New(4, 6)) {
		t.Errorf("Minus = %v", got)
	}
	if got := a.Union(nil); !got.Equal(a) {
		t.Errorf("Union nil = %v", got)
	}
	if got := a.Intersect(nil); !got.Empty() {
		t.Errorf("Intersect nil = %v", got)
	}
	if got := a.Minus(nil); !got.Equal(a) {
		t.Errorf("Minus nil = %v", got)
	}
}

func TestWithoutAndWith(t *testing.T) {
	s := New(1, 2, 3)
	if got := s.Without(2); !got.Equal(New(1, 3)) {
		t.Errorf("Without(2) = %v", got)
	}
	if got := s.Without(9); !got.Equal(s) {
		t.Errorf("Without(9) = %v", got)
	}
	if got := s.With(0); !got.Equal(New(0, 1, 2, 3)) {
		t.Errorf("With(0) = %v", got)
	}
	if got := s.With(2); !got.Equal(s) {
		t.Errorf("With(2) = %v", got)
	}
	if got := s.With(9); !got.Equal(New(1, 2, 3, 9)) {
		t.Errorf("With(9) = %v", got)
	}
	if got := s.WithoutIndex(0); !got.Equal(New(2, 3)) {
		t.Errorf("WithoutIndex(0) = %v", got)
	}
	if got := s.WithoutIndex(2); !got.Equal(New(1, 2)) {
		t.Errorf("WithoutIndex(2) = %v", got)
	}
	// original is untouched
	if !s.Equal(New(1, 2, 3)) {
		t.Errorf("receiver mutated: %v", s)
	}
}

func TestPrefixOps(t *testing.T) {
	a := New(1, 2, 5)
	b := New(1, 2, 9)
	c := New(1, 3, 5)
	if !SamePrefix(a, b, 2) {
		t.Error("SamePrefix(a,b,2) = false")
	}
	if SamePrefix(a, c, 2) {
		t.Error("SamePrefix(a,c,2) = true")
	}
	if !SamePrefix(a, c, 1) {
		t.Error("SamePrefix(a,c,1) = false")
	}
	if SamePrefix(a, New(1), 2) {
		t.Error("SamePrefix with short operand should be false")
	}
	if !a.HasPrefix(New(1, 2)) {
		t.Error("HasPrefix")
	}
	if a.HasPrefix(New(2)) {
		t.Error("HasPrefix wrong start")
	}
	if a.HasPrefix(New(1, 2, 5, 7)) {
		t.Error("HasPrefix longer than s")
	}
	if got := a.Prefix(2); !got.Equal(New(1, 2)) {
		t.Errorf("Prefix(2) = %v", got)
	}
	if a.Last() != 5 {
		t.Errorf("Last = %d", a.Last())
	}
}

func TestFacets(t *testing.T) {
	s := New(1, 2, 3)
	var got []Itemset
	s.Facets(func(f Itemset) { got = append(got, f.Clone()) })
	want := []Itemset{New(2, 3), New(1, 3), New(1, 2)}
	if len(got) != len(want) {
		t.Fatalf("got %d facets, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("facet %d = %v, want %v", i, got[i], want[i])
		}
	}
	// singletons and empties yield nothing
	count := 0
	New(1).Facets(func(Itemset) { count++ })
	Itemset(nil).Facets(func(Itemset) { count++ })
	if count != 0 {
		t.Errorf("unexpected facets for trivial sets: %d", count)
	}
}

func TestEachSubsetOfSize(t *testing.T) {
	s := New(1, 2, 3, 4)
	var got []Itemset
	s.EachSubsetOfSize(2, func(x Itemset) { got = append(got, x.Clone()) })
	want := []Itemset{
		New(1, 2), New(1, 3), New(1, 4),
		New(2, 3), New(2, 4), New(3, 4),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d subsets, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("subset %d = %v, want %v", i, got[i], want[i])
		}
	}
	n := 0
	s.EachSubsetOfSize(0, func(x Itemset) {
		n++
		if !x.Empty() {
			t.Errorf("size-0 subset = %v", x)
		}
	})
	if n != 1 {
		t.Errorf("size-0 subsets = %d, want 1", n)
	}
	n = 0
	s.EachSubsetOfSize(4, func(x Itemset) {
		n++
		if !x.Equal(s) {
			t.Errorf("size-4 subset = %v", x)
		}
	})
	if n != 1 {
		t.Errorf("size-4 subsets = %d, want 1", n)
	}
	s.EachSubsetOfSize(5, func(Itemset) { t.Error("size-5 subset of 4-set") })
	s.EachSubsetOfSize(-1, func(Itemset) { t.Error("negative size") })
}

func TestStringAndParse(t *testing.T) {
	tests := []struct {
		in   string
		want Itemset
	}{
		{"{1,2,3}", New(1, 2, 3)},
		{"1 2 3", New(1, 2, 3)},
		{"{}", nil},
		{"", nil},
		{"{42}", New(42)},
		{"3,1,2", New(1, 2, 3)},
		{"  {7, 9}  ", New(7, 9)},
	}
	for _, tc := range tests {
		got, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", tc.in, err)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("Parse(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"{1,x}", "1,-2", "{1 2 z}"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
	if got := New(1, 5, 9).String(); got != "{1,5,9}" {
		t.Errorf("String = %q", got)
	}
	if got := Itemset(nil).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestRange(t *testing.T) {
	if got := Range(0, 4); !got.Equal(New(0, 1, 2, 3)) {
		t.Errorf("Range(0,4) = %v", got)
	}
	if got := Range(2, 3); !got.Equal(New(2)) {
		t.Errorf("Range(2,3) = %v", got)
	}
	if got := Range(3, 3); got != nil {
		t.Errorf("Range(3,3) = %v", got)
	}
	if got := Range(5, 2); got != nil {
		t.Errorf("Range(5,2) = %v", got)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	sets := []Itemset{nil, New(0), New(1, 2, 3), New(255, 256, 65536), Range(0, 100)}
	for _, s := range sets {
		got := KeyToItemset(s.Key())
		if !got.Equal(s) {
			t.Errorf("KeyToItemset(Key(%v)) = %v", s, got)
		}
	}
	if New(1, 2).Key() == New(1, 3).Key() {
		t.Error("distinct sets share a key")
	}
}

// --- property-based tests ---

// randomItemset generates a sorted duplicate-free itemset over [0, 32).
func randomItemset(r *rand.Rand) Itemset {
	n := r.Intn(8)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item(r.Intn(32))
	}
	return New(items...)
}

func TestQuickSubsetUnionLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomItemset(r), randomItemset(r)
		u := a.Union(b)
		if !a.IsSubsetOf(u) || !b.IsSubsetOf(u) {
			return false
		}
		i := a.Intersect(b)
		if !i.IsSubsetOf(a) || !i.IsSubsetOf(b) {
			return false
		}
		// |A| + |B| = |A ∪ B| + |A ∩ B|
		if len(a)+len(b) != len(u)+len(i) {
			return false
		}
		// A \ B and A ∩ B partition A
		d := a.Minus(b)
		if len(d)+len(i) != len(a) {
			return false
		}
		if !d.Union(i).Equal(a) {
			return false
		}
		// commutativity
		if !u.Equal(b.Union(a)) || !i.Equal(b.Intersect(a)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsetMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomItemset(r), randomItemset(r)
		naive := true
		for _, x := range a {
			if !b.Contains(x) {
				naive = false
				break
			}
		}
		return a.IsSubsetOf(b) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareIsTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomItemset(r), randomItemset(r), randomItemset(r)
		// antisymmetry
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// reflexivity / equality agreement
		if (a.Compare(b) == 0) != a.Equal(b) {
			return false
		}
		// transitivity (on the ≤ relation)
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEachSubsetCounts(t *testing.T) {
	binom := func(n, k int) int {
		if k < 0 || k > n {
			return 0
		}
		c := 1
		for i := 0; i < k; i++ {
			c = c * (n - i) / (i + 1)
		}
		return c
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomItemset(r)
		k := r.Intn(len(s) + 2)
		count := 0
		ok := true
		s.EachSubsetOfSize(k, func(x Itemset) {
			count++
			if len(x) != k || !x.IsSubsetOf(s) {
				ok = false
			}
		})
		return ok && count == binom(len(s), k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
