package pincer

import (
	"pincer/internal/episodes"
	"pincer/internal/stocks"
)

// The paper motivates maximal-itemset mining with two applications beyond
// market baskets (§1, §6): episode discovery in event sequences and
// co-movement patterns in stock prices. Both are first-class here.

// Episode mining -------------------------------------------------------

// Event is one timestamped occurrence in an event sequence.
type Event = episodes.Event

// EventSequence is a time-ordered event stream.
type EventSequence = episodes.Sequence

// Episode is a maximal frequent parallel episode: a set of event types
// co-occurring within a time window in at least a fraction Frequency of
// window positions.
type Episode = episodes.Episode

// EpisodeGeneratorParams configures the synthetic event-sequence generator.
type EpisodeGeneratorParams = episodes.GeneratorParams

// MineEpisodes finds all maximal frequent parallel episodes of the
// sequence: the stream is windowed (width time units) into a transaction
// database and mined with Pincer-Search. numTypes declares the event-type
// universe (0 infers it).
func MineEpisodes(s EventSequence, width int64, minFrequency float64, numTypes int) ([]Episode, *Result, error) {
	return episodes.MineMaximal(s, width, minFrequency, numTypes)
}

// GenerateEventSequence produces a synthetic event stream with planted
// episode signatures over background noise.
func GenerateEventSequence(p EpisodeGeneratorParams) EventSequence {
	return episodes.Generate(p)
}

// Stock-market co-movement ----------------------------------------------

// MarketParams configures the synthetic correlated market generator.
type MarketParams = stocks.Params

// Market is a generated market: Days holds the per-day baskets of rallying
// stocks, SectorMembers the planted correlation structure.
type Market = stocks.Market

// GenerateMarket synthesizes a stock market under a one-factor-per-sector
// model; mining Market.Days recovers the sectors as long maximal frequent
// itemsets (the paper's §6 scenario).
func GenerateMarket(p MarketParams) (*Market, error) {
	return stocks.Generate(p)
}
