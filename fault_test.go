package pincer_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"pincer"
)

func questDB(t *testing.T) *pincer.Dataset {
	t.Helper()
	return pincer.GenerateQuest(pincer.QuestParams{
		NumTransactions: 800, AvgTxLen: 10, AvgPatternLen: 4,
		NumPatterns: 15, NumItems: 30, Seed: 7,
	})
}

func TestMineContextMatchesMine(t *testing.T) {
	d := questDB(t)
	want := pincer.Mine(d, 0.05)
	got, err := pincer.MineContext(context.Background(), d, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.MFS) != len(want.MFS) {
		t.Fatalf("MFS size %d, want %d", len(got.MFS), len(want.MFS))
	}
	for i := range want.MFS {
		if !got.MFS[i].Equal(want.MFS[i]) {
			t.Fatalf("MFS[%d] = %v, want %v", i, got.MFS[i], want.MFS[i])
		}
	}
}

func TestMineContextCancelled(t *testing.T) {
	d := questDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must stop at the first boundary
	_, err := pincer.MineContext(ctx, d, 0.05)
	var pe *pincer.PartialResultError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *pincer.PartialResultError", err)
	}
	if pe.Reason != pincer.ReasonCancelled {
		t.Errorf("reason %q, want %q", pe.Reason, pincer.ReasonCancelled)
	}
}

func TestMinePassBudgetAndResume(t *testing.T) {
	d := questDB(t)
	cp := pincer.NewFileCheckpointer(filepath.Join(t.TempDir(), "mine.ckpt"))

	opt := pincer.DefaultPincerOptions()
	opt.Checkpointer = cp
	opt.MaxTotalPasses = 2
	_, err := pincer.MineWithOptionsContext(context.Background(), d, 0.05, opt)
	var pe *pincer.PartialResultError
	if !errors.As(err, &pe) {
		t.Fatalf("budgeted run returned %v, want *pincer.PartialResultError", err)
	}
	if pe.Reason != pincer.ReasonMaxPasses || pe.Pass != 2 {
		t.Fatalf("aborted with reason %q at pass %d, want %q at pass 2", pe.Reason, pe.Pass, pincer.ReasonMaxPasses)
	}

	opt.MaxTotalPasses = 0
	got, err := pincer.MineResume(context.Background(), d, 0.05, opt)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	want := pincer.Mine(d, 0.05)
	if len(got.MFS) != len(want.MFS) {
		t.Fatalf("resumed MFS size %d, want %d", len(got.MFS), len(want.MFS))
	}
	for i := range want.MFS {
		if !got.MFS[i].Equal(want.MFS[i]) {
			t.Fatalf("resumed MFS[%d] = %v, want %v", i, got.MFS[i], want.MFS[i])
		}
	}
	// A completed resume clears the checkpoint.
	if st, err := cp.Load(); err != nil || st != nil {
		t.Fatalf("checkpoint after completed resume = (%v, %v), want (nil, nil)", st, err)
	}
}

func TestMineAprioriParallelContext(t *testing.T) {
	d := questDB(t)
	want := pincer.MineApriori(d, 0.05)
	popt := pincer.DefaultParallelOptions()
	popt.Workers = 3
	got, err := pincer.MineAprioriParallelContext(context.Background(), d, 0.05, popt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.MFS) != len(want.MFS) {
		t.Fatalf("MFS size %d, want %d", len(got.MFS), len(want.MFS))
	}
}
