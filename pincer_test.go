package pincer_test

import (
	"strings"
	"testing"

	"pincer"
)

func toyDataset() *pincer.Dataset {
	return pincer.NewDataset(
		pincer.NewItemset(1, 2, 3),
		pincer.NewItemset(1, 2, 3),
		pincer.NewItemset(1, 2),
		pincer.NewItemset(3, 4),
		pincer.NewItemset(3, 4),
	)
}

func TestFacadeMine(t *testing.T) {
	db := toyDataset()
	res := pincer.Mine(db, 0.4)
	if len(res.MFS) != 2 {
		t.Fatalf("MFS = %v", res.MFS)
	}
	if !res.MFS[0].Equal(pincer.NewItemset(1, 2, 3)) || !res.MFS[1].Equal(pincer.NewItemset(3, 4)) {
		t.Fatalf("MFS = %v", res.MFS)
	}
	if res.MFSSupports[0] != 2 || res.MFSSupports[1] != 2 {
		t.Fatalf("supports = %v", res.MFSSupports)
	}
	if !res.IsFrequent(pincer.NewItemset(1, 3)) {
		t.Error("IsFrequent({1,3}) = false")
	}
	if got := pincer.CountFrequent(res); got != 9 {
		t.Errorf("CountFrequent = %d, want 9", got)
	}
	if got := len(pincer.ExpandFrequent(res, 0)); got != 9 {
		t.Errorf("ExpandFrequent = %d sets", got)
	}
}

func TestFacadeAprioriAgrees(t *testing.T) {
	db := toyDataset()
	a := pincer.MineApriori(db, 0.4)
	p := pincer.Mine(db, 0.4)
	if len(a.MFS) != len(p.MFS) {
		t.Fatalf("disagree: %v vs %v", a.MFS, p.MFS)
	}
	for i := range a.MFS {
		if !a.MFS[i].Equal(p.MFS[i]) {
			t.Fatalf("disagree at %d: %v vs %v", i, a.MFS[i], p.MFS[i])
		}
	}
	if a.Frequent == nil || a.Frequent.Len() != 9 {
		t.Errorf("apriori frequent set size wrong")
	}
}

func TestFacadeQuestRoundTrip(t *testing.T) {
	p, err := pincer.ParseQuestName("T5.I2.D300")
	if err != nil {
		t.Fatal(err)
	}
	p.NumItems = 50
	p.NumPatterns = 20
	p.Seed = 3
	db := pincer.GenerateQuest(p)
	if db.Len() != 300 {
		t.Fatalf("|D| = %d", db.Len())
	}
	res := pincer.MineWithOptions(db, 0.03, pincer.DefaultPincerOptions())
	ref := pincer.MineAprioriWithOptions(db, 0.03, pincer.DefaultAprioriOptions())
	if len(res.MFS) != len(ref.MFS) {
		t.Fatalf("facade miners disagree: %d vs %d", len(res.MFS), len(ref.MFS))
	}
}

func TestFacadeRules(t *testing.T) {
	db := toyDataset()
	res := pincer.Mine(db, 0.4)
	rules, err := pincer.RulesFromResult(db, res, 0, pincer.RuleParams{MinConfidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules")
	}
	found := false
	for _, r := range rules {
		if r.Antecedent.Equal(pincer.NewItemset(4)) && r.Consequent.Equal(pincer.NewItemset(3)) {
			found = true
			if r.Confidence != 1.0 {
				t.Errorf("confidence({4}=>{3}) = %v", r.Confidence)
			}
		}
	}
	if !found {
		t.Errorf("rule {4}=>{3} missing: %v", rules)
	}
}

func TestFacadeItemsetHelpers(t *testing.T) {
	s, err := pincer.ParseItemset("{3,1,2}")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(pincer.NewItemset(1, 2, 3)) {
		t.Fatalf("ParseItemset = %v", s)
	}
	if !strings.Contains(s.String(), "{1,2,3}") {
		t.Errorf("String = %q", s.String())
	}
	max := pincer.MaximalOnly([]pincer.Itemset{
		pincer.NewItemset(1), pincer.NewItemset(1, 2),
	})
	if len(max) != 1 || !max[0].Equal(pincer.NewItemset(1, 2)) {
		t.Fatalf("MaximalOnly = %v", max)
	}
}

func TestFacadeMineFile(t *testing.T) {
	dir := t.TempDir()
	db := toyDataset()
	path := dir + "/db.basket"
	if err := pincer.SaveDataset(path, db); err != nil {
		t.Fatal(err)
	}
	res, err := pincer.MineFile(path, 0.4, pincer.DefaultPincerOptions())
	if err != nil {
		t.Fatal(err)
	}
	mem := pincer.Mine(db, 0.4)
	if len(res.MFS) != len(mem.MFS) {
		t.Fatalf("file-backed mining disagrees: %v vs %v", res.MFS, mem.MFS)
	}
	for i := range mem.MFS {
		if !res.MFS[i].Equal(mem.MFS[i]) || res.MFSSupports[i] != mem.MFSSupports[i] {
			t.Fatalf("element %d: %v/%d vs %v/%d", i,
				res.MFS[i], res.MFSSupports[i], mem.MFS[i], mem.MFSSupports[i])
		}
	}
	if _, err := pincer.MineFile(dir+"/missing", 0.4, pincer.DefaultPincerOptions()); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFacadeMinimalKeys(t *testing.T) {
	rel := &pincer.Relation{
		Attrs: []string{"id", "name"},
		Rows:  [][]string{{"1", "a"}, {"2", "a"}, {"3", "b"}},
	}
	res, err := pincer.MinimalKeys(rel)
	if err != nil {
		t.Fatal(err)
	}
	// name is not a key (two "a"s); id is the only minimal key
	if len(res.MinimalKeys) != 1 || !res.MinimalKeys[0].Equal(pincer.NewItemset(0)) {
		t.Fatalf("keys = %v", res.MinimalKeys)
	}
}

func TestFacadeDatasetIO(t *testing.T) {
	db, err := pincer.ReadDataset(strings.NewReader("1 2\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("|D| = %d", db.Len())
	}
	dir := t.TempDir()
	if err := pincer.SaveDataset(dir+"/db.basket", db); err != nil {
		t.Fatal(err)
	}
	back, err := pincer.LoadDataset(dir + "/db.basket")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || !back.Transaction(0).Equal(pincer.NewItemset(1, 2)) {
		t.Fatalf("round trip failed: %v", back.Transactions())
	}
}
