// Package pincer is a Go implementation of the Pincer-Search algorithm for
// discovering the maximum frequent set (MFS) — the set of all maximal
// frequent itemsets — from transaction databases, after:
//
//	Dao-I Lin and Zvi M. Kedem. "Pincer-Search: A New Algorithm for
//	Discovering the Maximum Frequent Set." EDBT 1998.
//
// The package is a facade over the full library: the Pincer-Search miner
// and its MFCS data structure, the Apriori, Partition, Sampling, top-down
// and randomized baselines, the IBM Quest synthetic workload generator,
// association-rule generation, and the benchmark harness that regenerates
// the paper's figures. See the README for an overview and examples/ for
// runnable programs.
//
// # Quick start
//
//	db := pincer.GenerateQuest(pincer.QuestParams{NumTransactions: 10000})
//	res := pincer.Mine(db, 0.05) // maximal frequent itemsets at 5% support
//	for i, m := range res.MFS {
//	    fmt.Println(m, res.MFSSupports[i])
//	}
package pincer

import (
	"context"
	"io"

	"pincer/internal/apriori"
	"pincer/internal/checkpoint"
	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/fpmax"
	"pincer/internal/itemset"
	"pincer/internal/mfi"
	"pincer/internal/minkeys"
	"pincer/internal/parallel"
	"pincer/internal/quest"
	"pincer/internal/rules"
)

// The aliases below re-export the library's vocabulary so downstream users
// never import internal packages.
type (
	// Item identifies a single item (a non-negative integer id).
	Item = itemset.Item
	// Itemset is a sorted, duplicate-free set of items. Use NewItemset to
	// build one from arbitrary input.
	Itemset = itemset.Itemset
)

// NewItemset builds a normalized (sorted, de-duplicated) itemset.
func NewItemset(items ...Item) Itemset { return itemset.New(items...) }

// ParseItemset parses "{1,2,3}" or "1 2 3" into an itemset.
func ParseItemset(s string) (Itemset, error) { return itemset.Parse(s) }

// MaximalOnly filters a collection of itemsets down to its maximal
// elements (those not contained in another element).
func MaximalOnly(sets []Itemset) []Itemset { return itemset.MaximalOnly(sets) }

// Dataset is an in-memory transaction database.
type Dataset = dataset.Dataset

// Result is the outcome of a mining run; MFS holds the maximal frequent
// itemsets in lexicographic order with supports in MFSSupports.
type Result = mfi.Result

// Stats describes a mining run: passes, candidates (paper accounting),
// and wall-clock duration.
type Stats = mfi.Stats

// QuestParams configures the IBM Quest synthetic data generator.
type QuestParams = quest.Params

// PincerOptions configures the Pincer-Search miner.
type PincerOptions = core.Options

// AprioriOptions configures the Apriori baseline miner.
type AprioriOptions = apriori.Options

// Rule is an association rule with support, confidence, and lift.
type Rule = rules.Rule

// RuleParams are rule-quality thresholds.
type RuleParams = rules.Params

// Engine names a support-counting engine ("list", "hashtree", "trie").
type Engine = counting.Engine

// Counting engines.
const (
	EngineList     = counting.EngineList
	EngineHashTree = counting.EngineHashTree
	EngineTrie     = counting.EngineTrie
)

// TidListCounter counts candidate supports by intersecting per-item tid
// structures instead of rescanning the database. Install one on
// PincerOptions.Counter (or ParallelOptions via the core options) to switch
// the pincer miner to vertical counting; results are identical to scanning.
type TidListCounter = counting.TidListCounter

// TidListOptions configures a TidListCounter (workers, representation).
type TidListOptions = counting.TidListOptions

// RepMode selects the tid-structure representation used by vertical
// counting: automatic density switching, or forced bitset/list/diffset.
type RepMode = counting.RepMode

// Tid-structure representation modes.
const (
	RepAuto    = counting.RepAuto
	RepBitset  = counting.RepBitset
	RepList    = counting.RepList
	RepDiffset = counting.RepDiffset
)

// NewTidListCounter builds a vertical pass counter over d. The dataset must
// be the same one handed to the miner.
func NewTidListCounter(d *Dataset, opt TidListOptions) *TidListCounter {
	return counting.NewTidListCounter(d, opt)
}

// ParseCounterSpec parses a -counter style spec: "" or "scan" selects
// database scanning; "tidlist" or "tidlist:bitset|list|diffset" selects
// vertical counting with an optional forced representation.
func ParseCounterSpec(s string) (tidlist bool, rep RepMode, err error) {
	return counting.ParseCounterSpec(s)
}

// NewDataset builds a dataset from transactions (each normalized).
func NewDataset(transactions ...Itemset) *Dataset {
	d := dataset.Empty(0)
	for _, t := range transactions {
		d.Append(t)
	}
	return d
}

// LoadDataset reads a transaction database from disk — the basket text
// format (one transaction of space-separated item ids per line) or this
// library's binary format, sniffed automatically.
func LoadDataset(path string) (*Dataset, error) { return dataset.Load(path) }

// MineFile mines a basket file without materializing it in memory: the
// file is re-read once per pass, exactly the I/O regime of the paper's
// cost model. Use it for databases larger than RAM. A file that turns
// corrupt or unreadable between passes surfaces as an error, not a panic.
func MineFile(path string, minSupport float64, opt PincerOptions) (*Result, error) {
	sc, err := dataset.OpenFileScanner(path)
	if err != nil {
		return nil, err
	}
	return core.Mine(sc, minSupport, opt)
}

// MineFileParallel is MineFile with streaming count distribution: one
// reader goroutine re-reads the file each pass while popt.Workers
// goroutines count. Results are identical to MineFile; only wall-clock
// time changes.
func MineFileParallel(path string, minSupport float64, opt PincerOptions, popt ParallelOptions) (*Result, error) {
	sc, err := dataset.OpenFileScanner(path)
	if err != nil {
		return nil, err
	}
	return parallel.MinePincerFile(sc, minSupport, opt, popt)
}

// mustMine strips the impossible error of an in-memory mining run: memory
// scans cannot fail, so any error here is a programmer error.
func mustMine(res *Result, err error) *Result {
	if err != nil {
		panic(err)
	}
	return res
}

// SaveDataset writes a dataset in the basket text format.
func SaveDataset(path string, d *Dataset) error { return dataset.SaveBasketFile(path, d) }

// ReadDataset parses the basket text format from a reader.
func ReadDataset(r io.Reader) (*Dataset, error) { return dataset.ReadBasket(r) }

// GenerateQuest produces a synthetic benchmark database; zero-valued
// parameters take the paper's defaults (T10.I4.D100K, N=1000, |L|=2000).
func GenerateQuest(p QuestParams) *Dataset { return quest.Generate(p) }

// ParseQuestName parses a conventional benchmark database name such as
// "T20.I6.D100K" into generator parameters.
func ParseQuestName(name string) (QuestParams, error) { return quest.ParseName(name) }

// Mine discovers the maximum frequent set with Pincer-Search at a
// fractional minimum support (0.05 = 5%).
//
// Deprecated: Mine cannot report errors, so it panics if mining fails. Use
// MineContext, which also supports cancellation; Mine remains for source
// compatibility.
func Mine(d *Dataset, minSupport float64) *Result {
	return MineWithOptions(d, minSupport, core.DefaultOptions())
}

// MineWithOptions is Mine with explicit Pincer-Search options.
//
// Deprecated: MineWithOptions cannot report errors — with cancellation,
// budget, or checkpoint options set, a run that stops early makes it panic
// instead of returning the partial result. Use MineWithOptionsContext.
func MineWithOptions(d *Dataset, minSupport float64, opt PincerOptions) *Result {
	return mustMine(core.Mine(dataset.NewScanner(d), minSupport, opt))
}

// MineContext is Mine with cancellation: the context is observed at every
// pass boundary and inside scan loops. A cancelled or budget-stopped run
// returns a *PartialResultError carrying the anytime result.
func MineContext(ctx context.Context, d *Dataset, minSupport float64) (*Result, error) {
	return MineWithOptionsContext(ctx, d, minSupport, core.DefaultOptions())
}

// MineWithOptionsContext is MineContext with explicit Pincer-Search
// options. The context argument takes precedence over opt.Context.
func MineWithOptionsContext(ctx context.Context, d *Dataset, minSupport float64, opt PincerOptions) (*Result, error) {
	if ctx != nil {
		opt.Context = ctx
	}
	return core.Mine(dataset.NewScanner(d), minSupport, opt)
}

// MineResume continues a Pincer-Search run from the checkpoint recorded by
// opt.Checkpointer (see NewFileCheckpointer); with no checkpoint on record
// it mines from scratch. The resumed run produces exactly the result and
// statistics of an uninterrupted one.
func MineResume(ctx context.Context, d *Dataset, minSupport float64, opt PincerOptions) (*Result, error) {
	if ctx != nil {
		opt.Context = ctx
	}
	sc := dataset.NewScanner(d)
	return core.MineResume(sc, dataset.MinCountFor(sc.Len(), minSupport), opt)
}

// MineFileResume is MineResume over a basket file re-read once per pass.
func MineFileResume(ctx context.Context, path string, minSupport float64, opt PincerOptions) (*Result, error) {
	sc, err := dataset.OpenFileScanner(path)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		opt.Context = ctx
	}
	return core.MineResume(sc, dataset.MinCountFor(sc.Len(), minSupport), opt)
}

// MineApriori discovers the complete frequent set (and its MFS) with the
// Apriori baseline.
//
// Deprecated: MineApriori cannot report errors, so it panics if mining
// fails. Use MineAprioriContext.
func MineApriori(d *Dataset, minSupport float64) *Result {
	return MineAprioriWithOptions(d, minSupport, apriori.DefaultOptions())
}

// MineAprioriWithOptions is MineApriori with explicit options.
//
// Deprecated: MineAprioriWithOptions cannot report errors — with
// cancellation, budget, or checkpoint options set, a run that stops early
// makes it panic instead of returning the partial result. Use
// MineAprioriWithOptionsContext.
func MineAprioriWithOptions(d *Dataset, minSupport float64, opt AprioriOptions) *Result {
	return mustMine(apriori.Mine(dataset.NewScanner(d), minSupport, opt))
}

// MineAprioriContext is MineApriori with cancellation and error reporting.
func MineAprioriContext(ctx context.Context, d *Dataset, minSupport float64) (*Result, error) {
	return MineAprioriWithOptionsContext(ctx, d, minSupport, apriori.DefaultOptions())
}

// MineAprioriWithOptionsContext is MineAprioriContext with explicit
// options. The context argument takes precedence over opt.Context.
func MineAprioriWithOptionsContext(ctx context.Context, d *Dataset, minSupport float64, opt AprioriOptions) (*Result, error) {
	if ctx != nil {
		opt.Context = ctx
	}
	return apriori.Mine(dataset.NewScanner(d), minSupport, opt)
}

// MineAprioriResume continues a checkpointed Apriori run (see
// AprioriOptions.Checkpointer); with no checkpoint on record it mines from
// scratch.
func MineAprioriResume(ctx context.Context, d *Dataset, minSupport float64, opt AprioriOptions) (*Result, error) {
	if ctx != nil {
		opt.Context = ctx
	}
	sc := dataset.NewScanner(d)
	return apriori.MineResume(sc, dataset.MinCountFor(sc.Len(), minSupport), opt)
}

// ParallelOptions configures count-distribution parallel mining: worker
// count, per-worker counting engine, and frequent-set retention.
type ParallelOptions = parallel.Options

// DefaultParallelOptions returns the standard parallel configuration
// (GOMAXPROCS workers, hash-tree engine).
func DefaultParallelOptions() ParallelOptions { return parallel.DefaultOptions() }

// MineParallel runs count-distribution parallel Pincer-Search: every
// counting pass is distributed over opt.Workers goroutines scanning
// horizontal partitions of the database, with per-worker counters merged at
// the pass barrier. The result — MFS, supports, statistics — is identical
// to Mine; only wall-clock time changes.
//
// Deprecated: MineParallel cannot report errors — a worker failure or an
// early stop from cancellation, budget, or checkpoint options makes it
// panic. Use MineParallelContext.
func MineParallel(d *Dataset, minSupport float64, opt ParallelOptions) *Result {
	return mustMine(parallel.MinePincer(d, minSupport, opt))
}

// MineParallelContext is MineParallel with cancellation and error
// reporting. The context argument takes precedence over opt.Context.
func MineParallelContext(ctx context.Context, d *Dataset, minSupport float64, opt ParallelOptions) (*Result, error) {
	if ctx != nil {
		opt.Context = ctx
	}
	return parallel.MinePincer(d, minSupport, opt)
}

// MineParallelResume continues a checkpointed parallel run (see
// ParallelOptions.Checkpointer); with no checkpoint on record it mines from
// scratch.
func MineParallelResume(ctx context.Context, d *Dataset, minSupport float64, opt ParallelOptions) (*Result, error) {
	if ctx != nil {
		opt.Context = ctx
	}
	return parallel.MinePincerResume(d, d.MinCount(minSupport), core.DefaultOptions(), opt)
}

// MineAprioriParallel is the count-distribution parallel Apriori baseline.
//
// Deprecated: MineAprioriParallel cannot report errors — a worker failure
// or cancellation makes it panic. Use MineAprioriParallelContext.
func MineAprioriParallel(d *Dataset, minSupport float64, opt ParallelOptions) *Result {
	return mustMine(parallel.MineApriori(d, minSupport, opt))
}

// MineAprioriParallelContext is MineAprioriParallel with cancellation and
// error reporting. The context argument takes precedence over opt.Context.
func MineAprioriParallelContext(ctx context.Context, d *Dataset, minSupport float64, opt ParallelOptions) (*Result, error) {
	if ctx != nil {
		opt.Context = ctx
	}
	return parallel.MineApriori(d, minSupport, opt)
}

// PartialResultError is returned when a mine stops early — context
// cancellation, deadline, or a resource budget. It carries the anytime
// result: the frequent sets found so far (a lower bound on the MFS) and,
// for Pincer-Search, the MFCS as an upper bound.
type PartialResultError = mfi.PartialResultError

// Abort reasons carried by PartialResultError.Reason.
const (
	ReasonCancelled     = mfi.ReasonCancelled
	ReasonDeadline      = mfi.ReasonDeadline
	ReasonMaxPasses     = mfi.ReasonMaxPasses
	ReasonMaxCandidates = mfi.ReasonMaxCandidates
	ReasonMemory        = mfi.ReasonMemory
)

// Checkpointer persists mining state at pass barriers so an interrupted
// run can resume (see MineResume). Implementations must make Save atomic.
type Checkpointer = checkpoint.Checkpointer

// FileCheckpointer stores checkpoints in a single file written with the
// temp-file + rename protocol, so a crash never leaves a truncated
// checkpoint.
type FileCheckpointer = checkpoint.FileCheckpointer

// NewFileCheckpointer builds a file-backed checkpointer; assign it to
// PincerOptions.Checkpointer (or AprioriOptions/ParallelOptions) to
// checkpoint a run, and reuse it with MineResume to continue.
func NewFileCheckpointer(path string) *FileCheckpointer {
	return checkpoint.NewFileCheckpointer(path)
}

// DefaultPincerOptions returns the adaptive configuration the paper
// evaluates.
func DefaultPincerOptions() PincerOptions { return core.DefaultOptions() }

// DefaultAprioriOptions returns the standard Apriori configuration.
func DefaultAprioriOptions() AprioriOptions { return apriori.DefaultOptions() }

// RulesFromResult generates association rules from a mining result. For a
// Pincer-Search result it uses the paper's §2.1 scheme: the subsets of the
// maximal frequent itemsets are counted with one extra pass over the
// database. maxItemsetLen caps the subset expansion (0 = unlimited; set it
// when maximal itemsets are very long).
func RulesFromResult(d *Dataset, res *Result, maxItemsetLen int, p RuleParams) ([]Rule, error) {
	sc := dataset.NewScanner(d)
	return rules.FromMFS(sc, res.MFS, maxItemsetLen, p)
}

// ExpandFrequent enumerates every frequent itemset implied by a result's
// MFS (capped at maxLen items; 0 = unlimited). The expansion is exponential
// in the longest maximal itemset.
func ExpandFrequent(res *Result, maxLen int) []Itemset {
	return mfi.Expand(res.MFS, maxLen)
}

// CountFrequent returns how many frequent itemsets the result's MFS
// implies, without materializing them.
func CountFrequent(res *Result) int64 { return mfi.CountFrequent(res.MFS) }

// Profile summarizes a dataset's shape — transaction count, distinct-item
// universe, density, and item-frequency skew — the features the adaptive
// engine-selection policy reads. It is a pure function of the dataset.
type Profile = dataset.Profile

// ProfileDataset computes the dataset's profile in one pass.
func ProfileDataset(d *Dataset) Profile { return d.Profile() }

// Selection is the execution plan the adaptive policy derives from a
// profile: algorithm, counting strategy, and rationale.
type Selection = counting.Selection

// SelectEngine picks the execution plan for a dataset profile. The policy
// is deterministic (the same profile always selects the same plan) and
// result-invariant: every plan it can pick produces the identical MFS, so
// a policy miss costs speed, never correctness. See DESIGN.md §12 for the
// policy table and its calibration.
func SelectEngine(p Profile) Selection { return counting.SelectEngine(p) }

// FPMaxOptions configures the FP-max maximal miner.
type FPMaxOptions = fpmax.Options

// FPMaxResult extends Result with FP-tree diagnostics (conditional trees
// projected, nodes allocated).
type FPMaxResult = fpmax.Result

// DefaultFPMaxOptions returns the standard FP-max configuration.
func DefaultFPMaxOptions() FPMaxOptions { return fpmax.DefaultOptions() }

// MineFPMax discovers the maximum frequent set with the FP-max miner: an
// FP-tree (frequency-ordered prefix tree) searched depth-first with
// single-path collapse and subset-of-known-maximal pruning. Supports are
// exact and the MFS is byte-identical to every other miner's; FP-max is
// the fastest choice on dense, skewed data (see DESIGN.md §12).
func MineFPMax(d *Dataset, minSupport float64, opt FPMaxOptions) *FPMaxResult {
	return fpmax.MineMaximal(d, minSupport, opt)
}

// Relation is a table whose minimal keys can be discovered — the paper's
// §1 minimal-keys application.
type Relation = minkeys.Relation

// KeyResult reports a minimal-key discovery.
type KeyResult = minkeys.Result

// MinimalKeys discovers every minimal key of the relation by mining the
// maximal agree sets with Pincer-Search and taking minimal hypergraph
// transversals of their complements.
func MinimalKeys(rel *Relation) (*KeyResult, error) { return minkeys.Find(rel) }
