// Minimal-key discovery — the paper's §1 "minimal keys" application: find
// every minimal key of a relation by mining the maximal agree sets with
// Pincer-Search and taking the minimal transversals of their complements.
//
//	go run ./examples/minkeys             # built-in demo relation
//	go run ./examples/minkeys data.csv    # first row = attribute names
package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"strings"

	"pincer"
)

func main() {
	rel := demoRelation()
	if len(os.Args) > 1 {
		loaded, err := loadCSV(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rel = loaded
	}

	res, err := pincer.MinimalKeys(rel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("relation: %d attributes × %d rows (%d tuple pairs examined)\n",
		len(rel.Attrs), len(rel.Rows), res.Pairs)
	if res.HasDuplicateRows {
		fmt.Println("relation contains duplicate rows: no attribute set is a key")
		return
	}
	fmt.Printf("\nmaximal non-keys (maximal agree sets, mined as an MFS):\n")
	for _, nk := range res.MaximalNonKeys {
		fmt.Printf("  {%s}\n", strings.Join(rel.AttrNames(nk), ", "))
	}
	fmt.Printf("\nminimal keys:\n")
	for _, k := range res.MinimalKeys {
		fmt.Printf("  {%s}\n", strings.Join(rel.AttrNames(k), ", "))
	}
}

func demoRelation() *pincer.Relation {
	return &pincer.Relation{
		Attrs: []string{"emp_id", "name", "dept", "desk", "city"},
		Rows: [][]string{
			{"1", "alice", "eng", "d1", "nyc"},
			{"2", "bob", "eng", "d2", "nyc"},
			{"3", "alice", "sales", "d3", "nyc"},
			{"4", "carol", "sales", "d1", "sf"},
			{"5", "bob", "sales", "d2", "sf"},
			{"6", "carol", "eng", "d3", "sf"},
		},
	}
}

func loadCSV(path string) (*pincer.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) < 1 {
		return nil, fmt.Errorf("%s: empty CSV", path)
	}
	return &pincer.Relation{Attrs: records[0], Rows: records[1:]}, nil
}
