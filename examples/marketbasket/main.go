// Market-basket analysis on a synthetic retail workload: generate an IBM
// Quest benchmark database (the paper's evaluation data), mine it with
// both Apriori and Pincer-Search, compare their cost, and derive the
// strongest association rules from the maximum frequent set.
//
//	go run ./examples/marketbasket
//	go run ./examples/marketbasket -name T20.I10.D10K -l 50 -support 0.06
package main

import (
	"flag"
	"fmt"
	"os"

	"pincer"
)

func main() {
	name := flag.String("name", "T10.I4.D5K", "Quest database name T<tx len>.I<pattern len>.D<transactions>")
	patterns := flag.Int("l", 50, "|L|: number of seeded patterns (50 = concentrated, 2000 = scattered)")
	support := flag.Float64("support", 0.05, "minimum support fraction")
	confidence := flag.Float64("confidence", 0.9, "minimum rule confidence")
	seed := flag.Int64("seed", 7, "generator seed")
	flag.Parse()

	params, err := parseQuest(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	params.NumPatterns = *patterns
	params.Seed = *seed
	db := pincer.GenerateQuest(params)
	fmt.Printf("database %s, |L|=%d: %v\n\n", *name, *patterns, db.Stats())

	// Mine with the baseline and with Pincer-Search; both must produce the
	// identical maximum frequent set.
	apr := pincer.MineApriori(db, *support)
	pin := pincer.Mine(db, *support)
	fmt.Printf("%-14s %8s %12s %12s %10s\n", "algorithm", "passes", "candidates", "frequent", "time")
	fmt.Printf("%-14s %8d %12d %12d %10v\n", "apriori", apr.Stats.Passes, apr.Stats.Candidates, apr.Stats.FrequentCount, apr.Stats.Duration.Round(1e6))
	fmt.Printf("%-14s %8d %12d %12d %10v\n", "pincer-search", pin.Stats.Passes, pin.Stats.Candidates, pin.Stats.FrequentCount, pin.Stats.Duration.Round(1e6))
	if len(apr.MFS) != len(pin.MFS) {
		fmt.Fprintln(os.Stderr, "BUG: algorithms disagree!")
		os.Exit(1)
	}
	fmt.Printf("\nboth found the same %d maximal frequent itemsets (longest: %d items)\n",
		len(pin.MFS), pin.LongestMFS())
	fmt.Printf("the MFS implies %d frequent itemsets; Pincer-Search examined only %d explicitly\n\n",
		pincer.CountFrequent(pin), pin.Stats.FrequentCount)

	show := len(pin.MFS)
	if show > 8 {
		show = 8
	}
	fmt.Printf("top %d maximal itemsets by support:\n", show)
	printed := 0
	for i := range pin.MFS {
		if printed >= show {
			break
		}
		fmt.Printf("  %v support=%d\n", pin.MFS[i], pin.MFSSupports[i])
		printed++
	}

	rules, err := pincer.RulesFromResult(db, pin, 12, pincer.RuleParams{MinConfidence: *confidence})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	top := len(rules)
	if top > 10 {
		top = 10
	}
	fmt.Printf("\n%d association rules at confidence ≥ %.2f; strongest %d:\n", len(rules), *confidence, top)
	for _, r := range rules[:top] {
		fmt.Println(" ", r)
	}
}

// parseQuest wraps the library's name parser with a usage-friendly error.
func parseQuest(name string) (pincer.QuestParams, error) {
	p, err := pincer.ParseQuestName(name)
	if err != nil {
		return pincer.QuestParams{}, fmt.Errorf("bad -name %q: %w (want e.g. T10.I4.D5K)", name, err)
	}
	return p, nil
}
