// Episode discovery in event sequences — the application (Mannila &
// Toivonen, KDD'96) the paper cites as a driver for maximal-itemset
// mining (§1, §6): find the maximal sets of alarm types that fire together
// within a time window.
//
// The example plants multi-alarm failure signatures into a noisy telecom
// alarm stream, windows the stream, and mines maximal parallel episodes
// with Pincer-Search.
//
//	go run ./examples/episodes
package main

import (
	"flag"
	"fmt"
	"os"

	"pincer"
)

func main() {
	length := flag.Int64("length", 20000, "sequence length (time units)")
	width := flag.Int64("window", 12, "episode window width")
	minFreq := flag.Float64("freq", 0.03, "minimum episode frequency (fraction of windows)")
	seed := flag.Int64("seed", 11, "generator seed")
	flag.Parse()

	// Three failure signatures: a cascading link failure (7 alarms), a
	// power event (5 alarms), and a flapping interface pair.
	signatures := []pincer.Itemset{
		pincer.NewItemset(10, 11, 12, 13, 14, 15, 16),
		pincer.NewItemset(30, 31, 32, 33, 34),
		pincer.NewItemset(50, 51),
	}
	seq := pincer.GenerateEventSequence(pincer.EpisodeGeneratorParams{
		NumTypes:   80,
		Length:     *length,
		NoiseRate:  0.08,
		Episodes:   signatures,
		Period:     60,
		BurstWidth: *width / 2,
		Seed:       *seed,
	})
	fmt.Printf("alarm stream: %d events over %d time units, %d planted signatures\n",
		len(seq), *length, len(signatures))

	eps, res, err := pincer.MineEpisodes(seq, *width, *minFreq, 80)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("windows mined in %d passes; %d maximal episodes at frequency ≥ %.1f%%:\n",
		res.Stats.Passes, len(eps), *minFreq*100)
	for _, e := range eps {
		if len(e.Types) < 2 {
			continue
		}
		marker := ""
		for i, sig := range signatures {
			if sig.IsSubsetOf(e.Types) {
				marker = fmt.Sprintf("  <- contains planted signature %d", i)
			}
		}
		fmt.Printf("  %v  freq %.3f%s\n", e.Types, e.Frequency, marker)
	}
	recovered := 0
	for _, sig := range signatures {
		for _, e := range eps {
			if sig.IsSubsetOf(e.Types) {
				recovered++
				break
			}
		}
	}
	fmt.Printf("recovered %d/%d planted signatures\n", recovered, len(signatures))
}
