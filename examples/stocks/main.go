// Stock-market co-movement discovery — the paper's §6 motivating
// application: "prices of individual stocks are frequently quite
// correlated ... the discovered patterns may contain many items and the
// frequent itemsets are long. Here, our algorithm could be of great
// importance."
//
// The example synthesizes a market with sector structure, converts each
// trading day into the basket of stocks that rallied, and mines the
// maximum frequent set: the long maximal itemsets recover the sectors,
// and the pass/candidate comparison shows why bottom-up mining is the
// wrong tool for this data.
//
//	go run ./examples/stocks
package main

import (
	"flag"
	"fmt"
	"os"

	"pincer"
)

func main() {
	days := flag.Int("days", 1500, "trading days")
	numStocks := flag.Int("stocks", 100, "number of stocks")
	support := flag.Float64("support", 0.07, "minimum support fraction (co-rally frequency)")
	seed := flag.Int64("seed", 42, "market seed")
	flag.Parse()

	market, err := pincer.GenerateMarket(pincer.MarketParams{
		NumStocks:   *numStocks,
		NumDays:     *days,
		Sectors:     []int{12, 10, 8, 6},
		MarketVol:   0.25,
		SectorVol:   1.3,
		IdioVol:     0.35,
		UpThreshold: 1.0,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("market: %d stocks over %d days, %d sectors planted\n",
		*numStocks, *days, len(market.SectorMembers))
	fmt.Printf("within-sector return correlation ≈ %.2f, across ≈ %.2f\n\n",
		market.Correlation(market.SectorMembers[0][0], market.SectorMembers[0][1]),
		market.Correlation(market.SectorMembers[0][0], market.SectorMembers[1][0]))

	apr := pincer.MineApriori(market.Days, *support)
	pin := pincer.Mine(market.Days, *support)
	fmt.Printf("%-14s %8s %12s %10s\n", "algorithm", "passes", "candidates", "time")
	fmt.Printf("%-14s %8d %12d %10v\n", "apriori", apr.Stats.Passes, apr.Stats.Candidates, apr.Stats.Duration.Round(1e6))
	fmt.Printf("%-14s %8d %12d %10v\n\n", "pincer-search", pin.Stats.Passes, pin.Stats.Candidates, pin.Stats.Duration.Round(1e6))

	fmt.Printf("%d maximal co-rally groups at %.0f%% of days (longest: %d stocks)\n",
		len(pin.MFS), *support*100, pin.LongestMFS())
	for _, m := range pin.MFS {
		if len(m) < 6 {
			continue
		}
		best, overlap := -1, 0
		for s, sec := range market.SectorMembers {
			if n := len(m.Intersect(sec)); n > overlap {
				best, overlap = s, n
			}
		}
		fmt.Printf("  %2d stocks, %2d/%2d from sector %d: %v\n", len(m), overlap, len(m), best, m)
	}
}
