// Quickstart: mine the maximum frequent set from a handful of market
// baskets and derive association rules — the paper's two-stage pipeline
// (§2.1) in thirty lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"pincer"
)

func main() {
	// A toy grocery log. Items: 0=bread 1=milk 2=butter 3=beer 4=diapers.
	db := pincer.NewDataset(
		pincer.NewItemset(0, 1, 2),
		pincer.NewItemset(0, 1, 2),
		pincer.NewItemset(0, 1),
		pincer.NewItemset(3, 4),
		pincer.NewItemset(3, 4),
		pincer.NewItemset(0, 3, 4),
		pincer.NewItemset(1, 2),
		pincer.NewItemset(0, 1, 2, 4),
	)
	names := []string{"bread", "milk", "butter", "beer", "diapers"}
	label := func(s pincer.Itemset) string {
		out := "{"
		for i, it := range s {
			if i > 0 {
				out += ", "
			}
			out += names[it]
		}
		return out + "}"
	}

	// Stage 1: the maximum frequent set at 25% support. Every frequent
	// itemset is a subset of one of these maximal itemsets.
	res := pincer.Mine(db, 0.25)
	fmt.Printf("mined %d transactions in %d passes; %d maximal frequent itemsets imply %d frequent itemsets:\n",
		db.Len(), res.Stats.Passes, len(res.MFS), pincer.CountFrequent(res))
	for i, m := range res.MFS {
		fmt.Printf("  %-28s support %d/%d\n", label(m), res.MFSSupports[i], db.Len())
	}

	// Stage 2: association rules from the MFS, with one extra pass to
	// count subset supports (paper §2.1).
	rules, err := pincer.RulesFromResult(db, res, 0, pincer.RuleParams{MinConfidence: 0.8})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n%d rules at confidence ≥ 0.8:\n", len(rules))
	for _, r := range rules {
		fmt.Printf("  %s => %s  (support %.2f, confidence %.2f, lift %.2f)\n",
			label(r.Antecedent), label(r.Consequent), r.Support, r.Confidence, r.Lift)
	}
}
