package pincer

import "pincer/internal/server"

// The serving layer (the engine behind cmd/pincerd) re-exported: an
// HTTP/JSON mining service with an async job manager, a content-addressed
// result cache, and checkpoint-backed restart-resume. See internal/server
// and DESIGN.md §9 for the full API and semantics.
type (
	// ServerConfig configures a mining service: spool directory, worker
	// pool, queue bound, cache bound, and observability hooks.
	ServerConfig = server.Config
	// Server is the HTTP mining service; it implements http.Handler.
	Server = server.Server
	// JobRequest is the body of POST /v1/jobs.
	JobRequest = server.JobRequest
	// JobView is the body of GET /v1/jobs/{id}.
	JobView = server.JobView
	// ResultDoc is the body of GET /v1/results/{id}.
	ResultDoc = server.ResultDoc
)

// NewServer builds a mining service, resuming any in-flight jobs found in
// the spool directory.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// ServerCacheKey derives the content-addressed result-cache key of a
// request: SHA-256 over the dataset bytes and every answer-shaping option.
func ServerCacheKey(datasetBytes []byte, spec JobRequest) string {
	return server.CacheKey(datasetBytes, spec)
}
