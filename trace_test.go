// End-to-end agreement between the trace event stream and the miners' own
// Stats: for every traced run, the PassDone events must mirror
// Stats.PassDetails entry for entry, and the RunStart/RunDone bracket must
// match the run's inputs and final Stats. This is the acceptance contract
// of the observability layer (obsv package doc, PassEvent doc).
package pincer

import (
	"fmt"
	"testing"

	"pincer/internal/apriori"
	"pincer/internal/core"
	"pincer/internal/dataset"
	"pincer/internal/mfi"
	"pincer/internal/obsv"
	"pincer/internal/parallel"
	"pincer/internal/quest"
	"pincer/internal/topdown"
)

// checkTrace asserts the collected event stream agrees exactly with the
// result's Stats.
func checkTrace(t *testing.T, c *obsv.Collector, res *mfi.Result, wantWorkers int) {
	t.Helper()
	s := res.Stats

	runs := c.Runs()
	if len(runs) != 1 {
		t.Fatalf("RunStart events = %d, want 1", len(runs))
	}
	if runs[0].Algorithm != s.Algorithm || runs[0].MinCount != res.MinCount ||
		runs[0].NumTransactions != res.NumTransactions || runs[0].Workers != wantWorkers {
		t.Errorf("RunInfo = %+v, want algorithm %q minCount %d transactions %d workers %d",
			runs[0], s.Algorithm, res.MinCount, res.NumTransactions, wantWorkers)
	}

	passes := c.Passes()
	if len(passes) != len(s.PassDetails) {
		t.Fatalf("PassDone events = %d, PassDetails = %d", len(passes), len(s.PassDetails))
	}
	for i, ev := range passes {
		pd := s.PassDetails[i]
		if ev.Pass != pd.Pass || ev.Candidates != pd.Candidates ||
			ev.MFCSCandidates != pd.MFCSCandidates || ev.Frequent != pd.Frequent ||
			ev.MFSFound != pd.MFSFound {
			t.Errorf("event %d = %+v does not mirror PassDetails %+v", i, ev, pd)
		}
		if ev.Infrequent != pd.Candidates-pd.Frequent {
			t.Errorf("event %d Infrequent = %d, want %d", i, ev.Infrequent, pd.Candidates-pd.Frequent)
		}
		if ev.Algorithm != s.Algorithm {
			t.Errorf("event %d algorithm %q, want %q", i, ev.Algorithm, s.Algorithm)
		}
		if ev.Phase == "" {
			t.Errorf("event %d has no phase tag", i)
		}
		if ev.Workers != wantWorkers {
			t.Errorf("event %d workers = %d, want %d", i, ev.Workers, wantWorkers)
		}
	}

	sums := c.Summaries()
	if len(sums) != 1 {
		t.Fatalf("RunDone events = %d, want 1", len(sums))
	}
	sum := sums[0]
	if sum.Algorithm != s.Algorithm || sum.Passes != s.Passes ||
		sum.Candidates != s.Candidates || sum.MFSSize != len(res.MFS) ||
		sum.Duration != s.Duration {
		t.Errorf("RunSummary = %+v does not mirror Stats %+v (|MFS|=%d)", sum, s, len(res.MFS))
	}
}

func TestTraceEventsMirrorStats(t *testing.T) {
	workloads := []quest.Params{
		{NumTransactions: 300, AvgTxLen: 5, AvgPatternLen: 2, NumPatterns: 100, NumItems: 60, Seed: 1},
		{NumTransactions: 300, AvgTxLen: 10, AvgPatternLen: 4, NumPatterns: 40, NumItems: 50, Seed: 2},
		{NumTransactions: 300, AvgTxLen: 12, AvgPatternLen: 6, NumPatterns: 15, NumItems: 40, Seed: 3},
	}
	for wi, p := range workloads {
		d := quest.Generate(p)
		t.Run(p.Name(), func(t *testing.T) {
			t.Run("pincer", func(t *testing.T) {
				c := obsv.NewCollector()
				opt := core.DefaultOptions()
				opt.Tracer = c
				res := must(core.Mine(dataset.NewScanner(d), 0.04, opt))
				checkTrace(t, c, res, 1)
			})
			t.Run("apriori", func(t *testing.T) {
				c := obsv.NewCollector()
				opt := apriori.DefaultOptions()
				opt.Tracer = c
				res := must(apriori.Mine(dataset.NewScanner(d), 0.04, opt))
				checkTrace(t, c, res, 1)
			})
			t.Run("parallel-pincer", func(t *testing.T) {
				c := obsv.NewCollector()
				popt := parallel.DefaultOptions()
				popt.Workers = 3
				popt.Tracer = c
				res := must(parallel.MinePincer(d, 0.04, popt))
				checkTrace(t, c, res, 3)
			})
		})
		// The pure top-down miner needs a tiny universe; give it its own
		// concentrated workload per seed.
		small := quest.Generate(quest.Params{
			NumTransactions: 400, AvgTxLen: 10, AvgPatternLen: 6,
			NumPatterns: 5, NumItems: 20, Seed: int64(100 + wi),
		})
		t.Run(fmt.Sprintf("topdown-seed%d", 100+wi), func(t *testing.T) {
			c := obsv.NewCollector()
			opt := topdown.DefaultOptions()
			opt.Tracer = c
			res := must(topdown.Mine(dataset.NewScanner(small), 0.10, opt))
			checkTrace(t, c, &res.Result, 1)
		})
	}
}
