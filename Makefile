# CI entry points. `make ci` is what the pipeline runs; the parallel, core,
# and obsv packages additionally run under the race detector because they
# are the packages with concurrency (counting workers, metrics scraping),
# and the fault-injection matrix re-runs race-clean because it interleaves
# kills and cancellations with the parallel counting barriers.

GO ?= go
FUZZTIME ?= 30s

.PHONY: ci vet build test race faults conformance fuzz cover load cluster stream stream-cluster serve bench bench-smoke bench-parallel bench-vertical bench-engines bench-cluster bench-stream bench-stream-cluster profile

ci: vet build test race faults conformance fuzz cover load cluster stream stream-cluster bench-smoke bench-engines

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

# The counting package is filtered to the engine-invariance property test:
# its steady-state allocation tests assert tight per-candidate bounds that
# race-detector instrumentation pushes over the line.
race:
	$(GO) test -race ./internal/parallel/... ./internal/core/... ./internal/obsv/... ./internal/fpmax/...
	$(GO) test -race -run TestEngineChoiceResultInvariant ./internal/counting/

# Kill/cancel every miner at every pass boundary and mid-scan point and
# assert that resuming from the checkpoint matches an uninterrupted run.
faults:
	$(GO) test -race ./internal/faultinject/... ./internal/checkpoint/...

# Every miner against the committed golden corpus (byte-identical supports).
# Regenerate the goldens after an intentional change with:
#   go test ./internal/mfi -run TestConformance -update
conformance:
	$(GO) test -race -run TestConformance ./internal/mfi

# Run each native fuzz target for $(FUZZTIME) (one -fuzz per invocation:
# `go test` accepts a single fuzz target at a time).
fuzz:
	$(GO) test ./internal/dataset -run '^$$' -fuzz FuzzBasketParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dataset -run '^$$' -fuzz FuzzReadBinary -fuzztime $(FUZZTIME)
	$(GO) test ./internal/checkpoint -run '^$$' -fuzz FuzzCheckpointDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzPincerMatchesApriori -fuzztime $(FUZZTIME)
	$(GO) test ./internal/server -run '^$$' -fuzz FuzzJobRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cluster -run '^$$' -fuzz FuzzClusterMessage -fuzztime $(FUZZTIME)
	$(GO) test ./internal/incremental -run '^$$' -fuzz FuzzMaintainerState -fuzztime $(FUZZTIME)
	$(GO) test ./internal/server -run '^$$' -fuzz FuzzStreamBatchRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cluster -run '^$$' -fuzz FuzzStreamClusterMessage -fuzztime $(FUZZTIME)

# Per-package statement coverage.
cover:
	$(GO) test -cover ./...

# Short deterministic load-generator run against an in-process daemon,
# race-clean, with chaos restarts and sequential-reference verification —
# the quick CI cut of the soak harness. `cmd/pincerload -local -duration 10m
# -chaos-interval 30s` is the long-soak version of the same thing.
load:
	$(GO) test -race ./internal/loadgen/... ./internal/server/...
	$(GO) run -race ./cmd/pincerload -local -duration 2s -concurrency 8 \
		-datasets 2 -minsup 0.3,0.5 -miners pincer,apriori,parallel,fpmax,auto,pincer/auto \
		-chaos-interval 800ms -chaos-restarts 1 -verify -seed 1 -out /tmp/pincerload-ci.json

# The distributed-mining matrix: coordinator/worker protocol, node-loss
# fault injection (kill 1-of-2 and 1-of-4 at every pass boundary and
# mid-scan), quorum degradation, and the worker-kill soak — all race-clean,
# since the coordinator's fan-out and the chaos kills interleave.
cluster:
	$(GO) test -race ./internal/cluster/...
	$(GO) run -race ./cmd/pincerload -local -cluster-workers 2 -chaos-kill-worker \
		-chaos-interval 500ms -duration 2s -concurrency 4 -datasets 2 \
		-minsup 0.3 -miners pincer -verify -seed 1 -out /tmp/pincerload-cluster-ci.json

# The incremental-maintenance matrix, race-clean: the maintainer's
# after-every-delta equivalence property (maintained MFS == from-scratch
# mine across randomized append/evict schedules), its fault-injection
# kill/restart tests, and the stream soak — streams fed through pincerd
# while chaos kill-restarts the daemon, verified against a sequential
# reference. The equivalence property alone is minutes of wall clock under
# the race detector, hence the raised timeout.
stream:
	$(GO) test -race -timeout 30m ./internal/incremental/...
	$(GO) run -race ./cmd/pincerload -local -duration 2500ms -concurrency 2 \
		-datasets 1 -minsup 0.4 -miners apriori -streams 3 \
		-chaos-interval 800ms -chaos-restarts 2 -verify -seed 1 \
		-out /tmp/pincerload-stream-ci.json
	$(GO) run -race ./cmd/pincerload -local -cluster-workers 2 -streams 3 \
		-chaos-kill-worker -chaos-interval 500ms -duration 2500ms -concurrency 2 \
		-datasets 1 -minsup 0.4 -miners apriori -verify -seed 1 \
		-out /tmp/pincerload-stream-cluster-ci.json

# The distributed-streams matrix, race-clean: the cross-layer equivalence
# suite (clustered maintainer == single-node maintainer == from-scratch
# mine after every delta, over the 12-workload corpus at 1/2/4 workers and
# both counters), the chaos matrix (worker kills at batch barriers and
# mid-delta-scan, coordinator kill between journal write and state
# snapshot), and the combined worker-kill stream soak. TestStreamCluster*
# is the naming contract: every test in the suite carries the prefix so
# one -run expression pins all three layers.
stream-cluster:
	$(GO) test -race -timeout 30m -run TestStreamCluster \
		./internal/cluster/ ./internal/incremental/ ./internal/server/
	$(GO) test -race -run TestSoakStreamCluster ./internal/loadgen/

# Run the mining service daemon locally.
serve:
	$(GO) run ./cmd/pincerd -addr localhost:8080 -spool /tmp/pincerd-spool

bench:
	$(GO) test -bench=. -benchmem .

# One iteration of every benchmark: catches bit-rotted benchmark code in CI
# without paying for real measurements.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x .

# Regenerate BENCH_parallel.json (T20.I10.D10K, workers 1/2/4).
bench-parallel:
	$(GO) run ./cmd/benchrun -workers 1,2,4 -spec F4-T20I10 -d 10000 \
		-parallel-support 0.06 -repeats 3 -json BENCH_parallel.json

# Regenerate BENCH_vertical.json (scan vs tid-list counting, same spec).
bench-vertical:
	$(GO) run ./cmd/benchrun -vertical -spec F4-T20I10 -d 10000 \
		-repeats 3 -json BENCH_vertical.json

# Regenerate BENCH_cluster.json: sequential Pincer vs the coordinator/worker
# cluster over an in-process loopback cluster. On one machine this prices
# the wire protocol's coordination overhead (the report refuses to call the
# ratio a speedup) and certifies byte-identical results at every width.
bench-cluster:
	$(GO) run ./cmd/benchrun -cluster 1,2,4 -spec F4-T20I10 -d 2000 \
		-repeats 3 -json BENCH_cluster.json

# Regenerate BENCH_engines.json: every fixed engine vs the adaptive
# engine=auto policy across the rising-density ladder (the same corpus the
# engine-invariance property test pins). Fails if auto is ever the worst
# plan on a cell or loses to the best single fixed choice summed over the
# sweep — the policy's calibration contract.
bench-engines:
	$(GO) run ./cmd/benchrun -engines -repeats 3 -json BENCH_engines.json

# Regenerate BENCH_stream.json: stream T20.I10.D10K into the incremental
# maintainer in 500-transaction batches, pricing every delta against a
# from-scratch mine of the same prefix. The headline is the re-mine
# avoidance rate and the border-unmoved delta being >=10x cheaper than the
# mine it avoids.
bench-stream:
	$(GO) run ./cmd/benchrun -stream -spec F4-T20I10 -d 10000 \
		-stream-batch-tx 500 -stream-support 0.2 -repeats 3 -json BENCH_stream.json

# Regenerate BENCH_stream_cluster.json: replay the stream sweep's batches
# into a cluster-backed maintainer over loopback workers at each width,
# pricing the per-delta wire overhead against the single-node maintainer
# with a per-batch byte-identical gate (the report refuses to call the
# ratio anything but wire overhead: loopback workers share the CPUs).
bench-stream-cluster:
	$(GO) run ./cmd/benchrun -stream-cluster 1,2,4 -spec F4-T20I10 -d 10000 \
		-stream-batch-tx 500 -stream-support 0.2 -repeats 3 -json BENCH_stream_cluster.json

# CPU-profile a representative mine (T10.I4.D10K) and print the ten
# hottest functions.
profile:
	$(GO) run ./cmd/questgen -name T10.I4.D10K -seed 1 -o /tmp/pincer-t10i4.basket
	$(GO) run ./cmd/pincer -input /tmp/pincer-t10i4.basket -support 0.03 \
		-cpuprofile /tmp/pincer-cpu.prof > /dev/null
	$(GO) tool pprof -top -nodecount=10 /tmp/pincer-cpu.prof
