# CI entry points. `make ci` is what the pipeline runs; the parallel and
# core packages additionally run under the race detector because they are
# the only packages with concurrency.

GO ?= go

.PHONY: ci vet build test race bench bench-parallel

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel/... ./internal/core/...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate BENCH_parallel.json (T20.I10.D10K, workers 1/2/4).
bench-parallel:
	$(GO) run ./cmd/benchrun -workers 1,2,4 -spec F4-T20I10 -d 10000 \
		-parallel-support 0.06 -repeats 3 -json BENCH_parallel.json
