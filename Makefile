# CI entry points. `make ci` is what the pipeline runs; the parallel, core,
# and obsv packages additionally run under the race detector because they
# are the packages with concurrency (counting workers, metrics scraping),
# and the fault-injection matrix re-runs race-clean because it interleaves
# kills and cancellations with the parallel counting barriers.

GO ?= go

.PHONY: ci vet build test race faults bench bench-parallel profile

ci: vet build test race faults

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel/... ./internal/core/... ./internal/obsv/...

# Kill/cancel every miner at every pass boundary and mid-scan point and
# assert that resuming from the checkpoint matches an uninterrupted run.
faults:
	$(GO) test -race ./internal/faultinject/... ./internal/checkpoint/...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate BENCH_parallel.json (T20.I10.D10K, workers 1/2/4).
bench-parallel:
	$(GO) run ./cmd/benchrun -workers 1,2,4 -spec F4-T20I10 -d 10000 \
		-parallel-support 0.06 -repeats 3 -json BENCH_parallel.json

# CPU-profile a representative mine (T10.I4.D10K) and print the ten
# hottest functions.
profile:
	$(GO) run ./cmd/questgen -name T10.I4.D10K -seed 1 -o /tmp/pincer-t10i4.basket
	$(GO) run ./cmd/pincer -input /tmp/pincer-t10i4.basket -support 0.03 \
		-cpuprofile /tmp/pincer-cpu.prof > /dev/null
	$(GO) tool pprof -top -nodecount=10 /tmp/pincer-cpu.prof
