// Benchmarks mirroring the paper's evaluation. Each BenchmarkFig* family
// corresponds to one row of Figure 3 (scattered) or Figure 4 (concentrated),
// with sub-benchmarks per minimum support and algorithm; the Ablation*
// families quantify the design choices DESIGN.md calls out. The full
// figure regeneration at paper scale is cmd/benchrun; these run at |D|=1000
// so `go test -bench=. -benchmem` finishes on a laptop.
package pincer

import (
	"fmt"
	"sync"
	"testing"

	"pincer/internal/apriori"
	"pincer/internal/bench"
	"pincer/internal/core"
	"pincer/internal/counting"
	"pincer/internal/dataset"
	"pincer/internal/mfi"
	"pincer/internal/parallel"
	"pincer/internal/quest"
	"pincer/internal/rules"
	"pincer/internal/topdown"
)

const benchTransactions = 1000

// must unwraps the (result, error) mining returns; in-memory benchmark
// scans cannot fail.
func must[R any](res R, err error) R {
	if err != nil {
		panic(err)
	}
	return res
}

var (
	benchDBMu sync.Mutex
	benchDBs  = map[string]*dataset.Dataset{}
)

// benchDB caches generated databases across benchmark runs.
func benchDB(b *testing.B, p quest.Params) *dataset.Dataset {
	b.Helper()
	key := fmt.Sprintf("%+v", p)
	benchDBMu.Lock()
	defer benchDBMu.Unlock()
	if d, ok := benchDBs[key]; ok {
		return d
	}
	d := quest.Generate(p)
	benchDBs[key] = d
	return d
}

// benchFigureRow benchmarks both algorithms on one figure row at the given
// supports (a subset of the full sweep keeps `go test -bench=.` tractable;
// cmd/benchrun runs the complete sweeps).
func benchFigureRow(b *testing.B, specID string, supports []float64) {
	spec, ok := bench.SpecByID(specID, benchTransactions)
	if !ok {
		b.Fatalf("unknown spec %s", specID)
	}
	d := benchDB(b, spec.Quest)
	for _, sup := range supports {
		sup := sup
		b.Run(fmt.Sprintf("sup=%g/apriori", sup), func(b *testing.B) {
			opt := apriori.DefaultOptions()
			opt.KeepFrequent = false
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := must(apriori.Mine(dataset.NewScanner(d), sup, opt))
				b.ReportMetric(float64(res.Stats.Passes), "passes")
				b.ReportMetric(float64(res.Stats.Candidates), "candidates")
			}
		})
		b.Run(fmt.Sprintf("sup=%g/pincer", sup), func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.KeepFrequent = false
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := must(core.Mine(dataset.NewScanner(d), sup, opt))
				b.ReportMetric(float64(res.Stats.Passes), "passes")
				b.ReportMetric(float64(res.Stats.Candidates), "candidates")
			}
		})
	}
}

// --- Figure 3: scattered distributions (|L| = 2000) ---

func BenchmarkFig3_T5I2(b *testing.B)  { benchFigureRow(b, "F3-T5I2", []float64{0.0075, 0.0025}) }
func BenchmarkFig3_T10I4(b *testing.B) { benchFigureRow(b, "F3-T10I4", []float64{0.02, 0.005}) }
func BenchmarkFig3_T20I6(b *testing.B) { benchFigureRow(b, "F3-T20I6", []float64{0.02, 0.01}) }

// --- Figure 4: concentrated distributions (|L| = 50) ---

func BenchmarkFig4_T20I6(b *testing.B)  { benchFigureRow(b, "F4-T20I6", []float64{0.18, 0.11}) }
func BenchmarkFig4_T20I10(b *testing.B) { benchFigureRow(b, "F4-T20I10", []float64{0.10, 0.06}) }
func BenchmarkFig4_T20I15(b *testing.B) { benchFigureRow(b, "F4-T20I15", []float64{0.10, 0.08}) }

// --- Ablations ---

// concentratedDB is the shared workload for the ablation benches: long
// maximal itemsets, the regime the paper targets.
func concentratedDB(b *testing.B) *dataset.Dataset {
	return benchDB(b, quest.Params{
		NumTransactions: benchTransactions, AvgTxLen: 20, AvgPatternLen: 10,
		NumPatterns: 50, NumItems: 1000, Seed: 1998,
	})
}

// BenchmarkAblationEngine compares the counting engines (paper §4.1.1 used
// the list; the hash tree and trie are the modern alternatives) on the same
// Apriori run.
func BenchmarkAblationEngine(b *testing.B) {
	d := concentratedDB(b)
	for _, e := range []counting.Engine{counting.EngineList, counting.EngineHashTree, counting.EngineTrie} {
		e := e
		b.Run(e.String(), func(b *testing.B) {
			opt := apriori.DefaultOptions()
			opt.Engine = e
			opt.KeepFrequent = false
			for i := 0; i < b.N; i++ {
				must(apriori.Mine(dataset.NewScanner(d), 0.10, opt))
			}
		})
	}
}

// BenchmarkAblationAdaptive compares pure and adaptive Pincer-Search.
func BenchmarkAblationAdaptive(b *testing.B) {
	d := concentratedDB(b)
	for _, pure := range []bool{false, true} {
		pure := pure
		name := "adaptive"
		if pure {
			name = "pure"
		}
		b.Run(name, func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Pure = pure
			opt.KeepFrequent = false
			for i := 0; i < b.N; i++ {
				must(core.Mine(dataset.NewScanner(d), 0.08, opt))
			}
		})
	}
}

// BenchmarkAblationRecovery measures the recovery procedure's value: with
// it disabled the MFCS tail phase must finish the job.
func BenchmarkAblationRecovery(b *testing.B) {
	d := concentratedDB(b)
	for _, disabled := range []bool{false, true} {
		disabled := disabled
		name := "recovery-on"
		if disabled {
			name = "recovery-off"
		}
		b.Run(name, func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.DisableRecovery = disabled
			opt.KeepFrequent = false
			for i := 0; i < b.N; i++ {
				res := must(core.Mine(dataset.NewScanner(d), 0.08, opt))
				b.ReportMetric(float64(res.Stats.TailPasses), "tailpasses")
			}
		})
	}
}

// BenchmarkAblationMFCSSplitStrategy compares the paper's incremental
// MFCS-gen against the batch (maximal-clique) rebuild on pass 2.
func BenchmarkAblationMFCSSplitStrategy(b *testing.B) {
	d := concentratedDB(b)
	for _, incMax := range []int{0, 1 << 30} {
		name := "clique-rebuild"
		if incMax > 0 {
			name = "incremental"
		}
		incMax := incMax
		b.Run(name, func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.IncrementalSplitMax = incMax
			opt.KeepFrequent = false
			for i := 0; i < b.N; i++ {
				must(core.Mine(dataset.NewScanner(d), 0.10, opt))
			}
		})
	}
}

// BenchmarkTopDownVsPincer quantifies why the pure top-down direction alone
// is not viable (paper §3.1): even on concentrated data it must creep down
// from the 1000-item universe.
func BenchmarkTopDownVsPincer(b *testing.B) {
	// tiny universe: pure top-down explodes beyond it
	d := benchDB(b, quest.Params{
		NumTransactions: 500, AvgTxLen: 10, AvgPatternLen: 6,
		NumPatterns: 5, NumItems: 24, Seed: 3,
	})
	b.Run("topdown", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			must(topdown.Mine(dataset.NewScanner(d), 0.10, topdown.DefaultOptions()))
		}
	})
	b.Run("pincer", func(b *testing.B) {
		opt := core.DefaultOptions()
		opt.KeepFrequent = false
		for i := 0; i < b.N; i++ {
			core.Mine(dataset.NewScanner(d), 0.10, opt)
		}
	})
}

// BenchmarkParallelPincer sweeps worker counts for count-distribution
// parallel Pincer-Search on the concentrated workload (the regime where
// candidate-heavy passes dominate and parallel counting pays off). The
// first iteration of every setting verifies the parallel result against
// the sequential miner.
func BenchmarkParallelPincer(b *testing.B) {
	d := concentratedDB(b)
	copt := core.DefaultOptions()
	copt.KeepFrequent = false
	seq := must(core.Mine(dataset.NewScanner(d), 0.08, copt))
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			must(core.Mine(dataset.NewScanner(d), 0.08, copt))
		}
	})
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := parallel.DefaultOptions()
			opt.Workers = workers
			opt.KeepFrequent = false
			for i := 0; i < b.N; i++ {
				res := must(parallel.MinePincerOpts(d, 0.08, copt, opt))
				if i == 0 {
					if err := mfi.VerifyAgainst(res.MFS, seq.MFS); err != nil {
						b.Fatalf("workers=%d: %v", workers, err)
					}
					for j := range res.MFSSupports {
						if res.MFSSupports[j] != seq.MFSSupports[j] {
							b.Fatalf("workers=%d: support(%v) = %d, want %d",
								workers, res.MFS[j], res.MFSSupports[j], seq.MFSSupports[j])
						}
					}
					if res.Stats.Passes != seq.Stats.Passes || res.Stats.Candidates != seq.Stats.Candidates {
						b.Fatalf("workers=%d: pass/candidate stats differ: %d/%d vs %d/%d",
							workers, res.Stats.Passes, res.Stats.Candidates,
							seq.Stats.Passes, seq.Stats.Candidates)
					}
				}
			}
		})
	}
}

// BenchmarkQuestGenerate measures the workload generator itself.
func BenchmarkQuestGenerate(b *testing.B) {
	p := quest.Params{NumTransactions: benchTransactions, AvgTxLen: 10, AvgPatternLen: 4, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		quest.Generate(p)
	}
}

// BenchmarkRulesFromMFS measures stage 2 (paper §2.1): subset expansion,
// one counting pass, ap-genrules.
func BenchmarkRulesFromMFS(b *testing.B) {
	d := concentratedDB(b)
	opt := core.DefaultOptions()
	opt.KeepFrequent = false
	res := must(core.Mine(dataset.NewScanner(d), 0.10, opt))
	sc := dataset.NewScanner(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rules.FromMFS(sc, res.MFS, 10, rules.Params{MinConfidence: 0.9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCountingEngines isolates the per-transaction counting cost.
func BenchmarkCountingEngines(b *testing.B) {
	d := concentratedDB(b)
	res := must(apriori.Mine(dataset.NewScanner(d), 0.10, apriori.DefaultOptions()))
	var cands []Itemset
	res.Frequent.Each(func(x Itemset, _ int64) {
		if len(x) == 3 {
			cands = append(cands, x)
		}
	})
	if len(cands) == 0 {
		b.Skip("no 3-itemsets at this support")
	}
	for _, e := range []counting.Engine{counting.EngineList, counting.EngineHashTree, counting.EngineTrie} {
		e := e
		b.Run(fmt.Sprintf("%s/cands=%d", e, len(cands)), func(b *testing.B) {
			ctr := counting.NewCounter(e, cands)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, tx := range d.Transactions() {
					ctr.Add(tx)
				}
			}
		})
	}
}

// BenchmarkPassCounters compares the two support-counting strategies on a
// whole concentrated-mine: horizontal scanning vs vertical tid-list
// intersection in each representation mode. The tid-list counter is rebuilt
// every iteration so its index construction is charged honestly.
func BenchmarkPassCounters(b *testing.B) {
	d := concentratedDB(b)
	run := func(b *testing.B, mk func() *counting.TidListCounter) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opt := core.DefaultOptions()
			opt.KeepFrequent = false
			if mk != nil {
				opt.Counter = mk()
			}
			res := must(core.Mine(dataset.NewScanner(d), 0.10, opt))
			b.ReportMetric(float64(res.Stats.Candidates), "candidates")
		}
	}
	b.Run("scan", func(b *testing.B) { run(b, nil) })
	for _, m := range []struct {
		name string
		rep  counting.RepMode
	}{{"tidlist-auto", counting.RepAuto}, {"tidlist-bitset", counting.RepBitset},
		{"tidlist-list", counting.RepList}, {"tidlist-diffset", counting.RepDiffset}} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			run(b, func() *counting.TidListCounter {
				return counting.NewTidListCounter(d, counting.TidListOptions{Rep: m.rep})
			})
		})
	}
}
