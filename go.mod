module pincer

go 1.22
