package pincer_test

import (
	"fmt"

	"pincer"
)

// The maximum frequent set of a toy basket database: every frequent itemset
// is a subset of one of the two maximal ones.
func ExampleMine() {
	db := pincer.NewDataset(
		pincer.NewItemset(1, 2, 3),
		pincer.NewItemset(1, 2, 3),
		pincer.NewItemset(1, 2),
		pincer.NewItemset(3, 4),
		pincer.NewItemset(3, 4),
	)
	res := pincer.Mine(db, 0.4) // frequent = at least 2 of 5 transactions
	for i, m := range res.MFS {
		fmt.Println(m, res.MFSSupports[i])
	}
	fmt.Println("implied frequent itemsets:", pincer.CountFrequent(res))
	// Output:
	// {1,2,3} 2
	// {3,4} 2
	// implied frequent itemsets: 9
}

// Association rules from a mining result, following the paper's §2.1
// two-stage scheme.
func ExampleRulesFromResult() {
	db := pincer.NewDataset(
		pincer.NewItemset(1, 2),
		pincer.NewItemset(1, 2),
		pincer.NewItemset(1, 2),
		pincer.NewItemset(1),
		pincer.NewItemset(3),
	)
	res := pincer.Mine(db, 0.4)
	rules, _ := pincer.RulesFromResult(db, res, 0, pincer.RuleParams{MinConfidence: 0.9})
	for _, r := range rules {
		fmt.Printf("%v => %v conf %.2f\n", r.Antecedent, r.Consequent, r.Confidence)
	}
	// Output:
	// {2} => {1} conf 1.00
}

// Minimal keys of a relation via maximal agree-set mining (paper §1).
func ExampleMinimalKeys() {
	res, _ := pincer.MinimalKeys(&pincer.Relation{
		Attrs: []string{"id", "name", "dept"},
		Rows: [][]string{
			{"1", "alice", "eng"},
			{"2", "bob", "eng"},
			{"3", "alice", "sales"},
		},
	})
	for _, k := range res.MinimalKeys {
		fmt.Println(k)
	}
	// Output:
	// {0}
	// {1,2}
}

// Itemsets normalize on construction.
func ExampleNewItemset() {
	fmt.Println(pincer.NewItemset(3, 1, 2, 3, 1))
	// Output: {1,2,3}
}
